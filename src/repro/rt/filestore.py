"""Durable file-backed log-server storage.

One :class:`FileLogStore` is the durable state of one real log-server
daemon: an fsync'd append stream of log entries (``log.dat``) plus a
persisted append-forest index per client (``forest-<client>.idx``),
both crash-recoverable by scan.

The in-memory view replays through the existing
:class:`~repro.core.store.LogServerStore`, so the Section 3.1.1
semantics (write-order rules, duplicate tolerance, staged CopyLog /
atomic InstallCopies, interval lists) are implemented exactly once; the
file layer adds only durability.

Section 5.3 log space management: :meth:`FileLogStore.truncate_below`
records a per-client truncation point, drops the reclaimed prefix from
the in-memory store, and compacts ``log.dat`` by rewriting it from the
live state (tmp file + atomic rename + directory fsync) — a restart
then replays only the retained suffix.  A size watermark
(``compact_watermark_bytes``) triggers the same compaction
automatically so a client that never truncates still gets a bounded
log.  An IO error (disk full) wedges the store read-only: appends
raise :class:`~repro.core.errors.StorageError`, reads keep working.

Append stream
-------------

``log.dat`` is a sequence of entries, each::

    !HB16s — magic, entry type, client id     (19 bytes)

followed by a type-specific payload:

* ``RECORD`` / ``STAGED``: one record in the wire image of
  :func:`repro.net.codec.encode_stored_record` (16-byte header with a
  CRC-32 of the data, then the data) — the on-disk and on-wire record
  bytes are identical;
* ``INSTALL``: ``!II`` — epoch, CRC-32 of the epoch field;
* ``FENCE``: ``!II`` — the client stream's fence epoch, CRC-32 of the
  epoch field (ownership handoff: writes below the fence are refused,
  and the refusal must survive a crash);
* ``GENERATOR``: ``!QI`` — value, CRC-32 of the value field (the
  Appendix I generator-state representative riding on the log server
  node).

Recovery scans the stream from the start, replaying every entry whose
bytes are complete and whose CRC verifies; the first torn or corrupt
entry ends the valid prefix and the file is truncated there.  A record
is therefore durable exactly when the ``fsync`` that covered it
returned — the contract the crash tests assert.

Append-forest index
-------------------

Steady-state appends (each client's strictly increasing LSN stream)
are indexed in an append-forest (Section 4.3) whose nodes live in a
:class:`FilePageStore` — a real-file append-only page store.  The
forest maps LSN → byte offset of the record's entry in ``log.dat``,
giving O(log n) point reads from durable state alone
(:meth:`FileLogStore.read_via_index`).  The index is written buffered:
if a crash loses its tail, recovery rebuilds the missing suffix from
the (authoritative) log scan, so the forest never needs an fsync.
Records re-written below the high-water mark by CopyLog/InstallCopies
are not re-indexed — append forests require strictly increasing keys —
and are served from the replayed in-memory state instead.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Sequence
from pathlib import Path

from ..core.errors import ProtocolError, StorageError
from ..core.intervals import ServerIntervals
from ..core.records import Epoch, LSN, StoredRecord
from ..core.store import LogServerStore
from ..net.codec import (
    RECORD_HEADER_BYTES,
    WireCodecError,
    decode_stored_record,
    encode_stored_record,
)
from ..storage.append_forest import AppendForest, ForestNode
from .faultfs import PassthroughIO

ENTRY_MAGIC = 0x4C45
_ENTRY = struct.Struct("!HB16s")
_INSTALL = struct.Struct("!II")
_GENERATOR = struct.Struct("!QI")
_TRUNCATE = struct.Struct("!II")
_FENCE = struct.Struct("!II")

E_RECORD = 1
E_STAGED = 2
E_INSTALL = 3
E_GENERATOR = 4
#: Section 5.3 low-water mark: every record of the entry's client with
#: a lower LSN has been reclaimed.  Compaction writes one at the head
#: of the rewritten stream so a replay after restart re-arms the
#: late-retransmission guard.
E_TRUNCATE = 5
#: Stream metadata: the log generation (``!QI`` value + CRC, like
#: ``E_GENERATOR``).  Each compaction starts its rewritten stream with
#: the incremented generation; forest index files record the generation
#: they were built against, so a crash anywhere between the compaction
#: rename and the index rebuild leaves forests that are *detectably*
#: stale (discarded and rebuilt from the log scan) instead of silently
#: mapping LSNs to byte offsets in a different stream.
E_META = 6
#: Ownership fence: the entry's client stream refuses any
#: WriteLog/ForceLog/TruncateLog below the stored epoch (``!II`` epoch
#: + CRC, like ``E_INSTALL``).  Durable so a server that crashes and
#: recovers still fences the superseded writer — the linearizable
#: handoff's safety rests on the fence never being forgotten.
E_FENCE = 7

#: injector site name per entry type (``faultfs`` crash-point naming).
_ETYPE_SITES = {
    E_RECORD: "log.write.record",
    E_STAGED: "log.write.staged",
    E_INSTALL: "log.write.install",
    E_GENERATOR: "log.write.generator",
    E_TRUNCATE: "log.write.truncate",
    E_META: "log.write.meta",
    E_FENCE: "log.write.fence",
}

PAGE_MAGIC = 0x4C46
_PAGE = struct.Struct("!HHI")  # magic, payload length, CRC-32(payload)
_NODE = struct.Struct("!IIqqqIHH")  # lo, hi, left, right, forest, min, h, n

FOREST_MAGIC = 0x4C47
_FOREST_HDR = struct.Struct("!HQI")  # magic, generation, CRC-32(!Q gen)


class FileStoreError(Exception):
    """A malformed durable file that is not a recoverable torn tail."""


def _pack_addr(address: int | None) -> int:
    return -1 if address is None else address


def _unpack_addr(value: int) -> int | None:
    return None if value < 0 else value


class FilePageStore:
    """An append-only page store over a real file (forest index pages).

    Satisfies the store interface :class:`AppendForest` needs —
    ``append`` / ``read`` / ``len`` — with :class:`ForestNode` payloads
    serialized one per page.  Pages are cached in memory after the
    opening scan; the file is the durable copy.  A torn final page is
    dropped at open, matching the append-forest durability contract
    ("a torn final page simply yields the forest as of the previous
    append").

    The file starts with a header recording the **log generation** the
    index was built against (see ``E_META``).  A file whose header is
    missing, torn, or from a different generation is discarded whole —
    its byte offsets describe a stream that no longer exists — and the
    owner rebuilds it from the log scan.
    """

    def __init__(self, path: Path, io: PassthroughIO | None = None, *,
                 generation: int = 0):
        self.path = Path(path)
        self.io = io if io is not None else PassthroughIO()
        self.generation = generation
        self._pages: list[ForestNode] = []
        self.appends = 0
        self.reads = 0
        valid = 0
        if self.path.exists():
            raw = self.path.read_bytes()
            offset = None
            if len(raw) >= _FOREST_HDR.size:
                magic, gen, crc = _FOREST_HDR.unpack_from(raw, 0)
                if magic == FOREST_MAGIC and gen == generation \
                        and zlib.crc32(raw[2:2 + 8]) == crc:
                    offset = _FOREST_HDR.size
            if offset is None:
                # Stale generation, torn header, or a pre-generation
                # legacy file: the offsets inside are not trustworthy.
                with open(self.path, "r+b") as fh:
                    fh.truncate(0)
            else:
                valid = offset
                while offset + _PAGE.size <= len(raw):
                    magic, plen, crc = _PAGE.unpack_from(raw, offset)
                    body = raw[offset + _PAGE.size:offset + _PAGE.size + plen]
                    if magic != PAGE_MAGIC or len(body) != plen \
                            or zlib.crc32(body) != crc:
                        break
                    self._pages.append(self._decode_node(body))
                    offset += _PAGE.size + plen
                    valid = offset
                if valid < len(raw):
                    with open(self.path, "r+b") as fh:
                        fh.truncate(valid)
        self._file = self.io.open(self.path, "ab", "forest.open")
        if valid == 0:
            gen_bytes = struct.pack("!Q", generation)
            self.io.write(
                self._file,
                _FOREST_HDR.pack(FOREST_MAGIC, generation,
                                 zlib.crc32(gen_bytes)),
                "forest.write",
            )

    @staticmethod
    def _encode_node(node: ForestNode) -> bytes:
        head = _NODE.pack(
            node.lo, node.hi, _pack_addr(node.left), _pack_addr(node.right),
            _pack_addr(node.forest), node.tree_min, node.height,
            len(node.entries),
        )
        return head + struct.pack(f"!{len(node.entries)}Q", *node.entries)

    @staticmethod
    def _decode_node(body: bytes) -> ForestNode:
        lo, hi, left, right, forest, tree_min, height, n = \
            _NODE.unpack_from(body, 0)
        entries = struct.unpack_from(f"!{n}Q", body, _NODE.size)
        return ForestNode(
            lo=lo, hi=hi, entries=entries, left=_unpack_addr(left),
            right=_unpack_addr(right), forest=_unpack_addr(forest),
            tree_min=tree_min, height=height,
        )

    def append(self, payload: ForestNode) -> int:
        body = self._encode_node(payload)
        page = _PAGE.pack(PAGE_MAGIC, len(body), zlib.crc32(body)) + body
        self.io.write(self._file, page, "forest.write")
        self._pages.append(payload)
        self.appends += 1
        return len(self._pages) - 1

    def read(self, address: int) -> ForestNode:
        self.reads += 1
        return self._pages[address]

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def next_address(self) -> int:
        return len(self._pages)

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()


def _client_file_tag(client_id: str) -> str:
    """A filesystem-safe tag for per-client index files."""
    return client_id.encode("utf-8").hex()


class FileLogStore:
    """Durable state of one real log-server node.

    All mutating operations append to ``log.dat`` first and then update
    the replayed in-memory :class:`LogServerStore`; acknowledgments are
    sent only after the append (and, for forces and installs, its
    ``fsync``) returns.  Reopening the same ``data_dir`` recovers the
    durable prefix by scan.
    """

    def __init__(self, data_dir: str | Path, server_id: str, *,
                 compact_watermark_bytes: int | None = None,
                 io: PassthroughIO | None = None):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        #: the storage I/O backend every mutating call goes through
        #: (:class:`~repro.rt.faultfs.PassthroughIO` by default, a
        #: :class:`~repro.rt.faultfs.FaultInjector` under crashsweep).
        self.io = io if io is not None else PassthroughIO()
        self.server_id = server_id
        self.mem = LogServerStore(server_id)
        self.generator_value = 0
        #: client id → standing fence epoch (ownership handoff);
        #: populated by replay, advanced only monotonically.
        self.fence_epochs: dict[str, int] = {}
        #: WriteLog/ForceLog/TruncateLog calls refused below a fence.
        self.fence_rejections = 0
        #: size watermark fallback (Section 5.3): when ``log.dat``
        #: exceeds this many bytes, the stream is compacted against the
        #: clients' declared low-water marks without waiting for the
        #: next TruncateLog.  ``None`` disables the fallback.
        self.compact_watermark_bytes = compact_watermark_bytes
        self._forests: dict[str, AppendForest] = {}
        self._log_path = self.data_dir / "log.dat"
        self.recovered_entries = 0
        self.truncated_bytes = 0
        # Counters for the Stats wire message.
        self.bytes_appended = 0
        #: log-file fsyncs issued (per-entry syncs and group syncs both).
        self.fsyncs = 0
        #: records presented for append (duplicates included — the
        #: covering fsync promises durability for them all the same).
        self.records_appended = 0
        self.truncations = 0
        self.compactions = 0
        self.reclaimed_bytes = 0
        self.storage_errors = 0
        #: complete-but-corrupt entries rejected by CRC during recovery
        #: (torn tails are not corruption and are counted separately).
        self.crc_rejections = 0
        #: bumped by every compaction; ties forest index files to the
        #: log stream they index (see ``E_META``).
        self.log_generation = 0
        #: first storage failure observed; non-None wedges all appends
        #: (the daemon degrades to read-only rather than lying about
        #: durability).
        self.io_error: str | None = None
        self._last_compact_size = 0
        self._size = self._recover()
        existed = self._log_path.exists()
        self._file = self.io.open(self._log_path, "ab", "log.open")
        if not existed:
            # A freshly created log.dat is not durable until its
            # directory entry is: without this barrier, power loss
            # after the first acked fsync could drop the whole file.
            self.io.fsync_dir(self.data_dir, "dir.create-sync")

    # -- recovery -----------------------------------------------------

    def _recover(self) -> int:
        """Replay the valid prefix of ``log.dat``; return its length."""
        raw = self._log_path.read_bytes() if self._log_path.exists() else b""
        offset = 0
        valid = 0
        steady: dict[str, list[tuple[LSN, int]]] = {}
        while offset < len(raw):
            parsed = self._parse_entry(raw, offset)
            if parsed is None:
                break
            etype, client_id, payload, next_offset = parsed
            try:
                if etype == E_RECORD:
                    self.mem.server_write_record(client_id, payload)
                    steady.setdefault(client_id, []).append(
                        (payload.lsn, offset)
                    )
                elif etype == E_STAGED:
                    self.mem.copy_log(client_id, payload.lsn, payload.epoch,
                                      payload.present, payload.data,
                                      payload.kind)
                elif etype == E_INSTALL:
                    self.mem.install_copies(client_id, payload)
                elif etype == E_TRUNCATE:
                    self.mem.truncate_below(client_id, payload)
                    pairs = steady.get(client_id)
                    if pairs:
                        steady[client_id] = [(lsn, off) for lsn, off in pairs
                                             if lsn >= payload]
                elif etype == E_META:
                    self.log_generation = max(self.log_generation, payload)
                elif etype == E_FENCE:
                    self.fence_epochs[client_id] = max(
                        self.fence_epochs.get(client_id, 0), payload
                    )
                else:  # E_GENERATOR
                    self.generator_value = max(self.generator_value, payload)
            except ProtocolError:
                # The entry decoded but cannot have been written by this
                # store (e.g. "epoch went backwards").  The record CRC
                # now spans the header too, so this is defense in depth;
                # it was first hit for real when a header bit flip
                # slipped past the old data-only CRC and the restart
                # died on the ProtocolError (``repro crashsweep``,
                # compact.write:3:bit-flip).  Corruption ends the valid
                # prefix; recovery keeps what precedes it.
                self.crc_rejections += 1
                break
            self.recovered_entries += 1
            offset = next_offset
            valid = offset
        if valid < len(raw):
            self.truncated_bytes = len(raw) - valid
            with open(self._log_path, "r+b") as fh:
                fh.truncate(valid)
        # Rebuild each client's forest from its index file, then index
        # whatever steady-state suffix the buffered index file lost.
        for client_id, pairs in steady.items():
            forest = self._forest(client_id)
            high = forest.high_key or 0
            for lsn, entry_offset in pairs:
                if lsn > high:
                    forest.append_key(lsn, entry_offset)
                    high = lsn
        return valid

    def _parse_entry(
        self, raw: bytes, offset: int
    ) -> tuple[int, str, object, int] | None:
        """Parse one entry; ``None`` if the tail is torn or corrupt.

        An entry whose bytes are all present but whose CRC does not
        verify is *corruption* (e.g. an injected bit flip), counted in
        ``crc_rejections``; an incomplete entry is an ordinary torn
        tail and is not.
        """
        if offset + _ENTRY.size > len(raw):
            return None
        magic, etype, cid_raw = _ENTRY.unpack_from(raw, offset)
        if magic != ENTRY_MAGIC:
            return None
        body = offset + _ENTRY.size
        try:
            client_id = cid_raw.rstrip(b"\x00").decode("utf-8")
        except UnicodeDecodeError:
            self.crc_rejections += 1
            return None
        if etype in (E_RECORD, E_STAGED):
            try:
                record, end = decode_stored_record(raw, body)
            except WireCodecError:
                if body + RECORD_HEADER_BYTES <= len(raw):
                    (dlen,) = struct.unpack_from("!H", raw, body + 10)
                    if body + RECORD_HEADER_BYTES + dlen <= len(raw):
                        self.crc_rejections += 1
                return None
            return etype, client_id, record, end
        if etype in (E_INSTALL, E_TRUNCATE, E_FENCE):
            if body + _INSTALL.size > len(raw):
                return None
            value, crc = _INSTALL.unpack_from(raw, body)
            if zlib.crc32(raw[body:body + 4]) != crc:
                self.crc_rejections += 1
                return None
            return etype, client_id, value, body + _INSTALL.size
        if etype in (E_GENERATOR, E_META):
            if body + _GENERATOR.size > len(raw):
                return None
            value, crc = _GENERATOR.unpack_from(raw, body)
            if zlib.crc32(raw[body:body + 8]) != crc:
                self.crc_rejections += 1
                return None
            return etype, client_id, value, body + _GENERATOR.size
        return None

    # -- the durable append path --------------------------------------

    def _wedge(self, exc: OSError) -> StorageError:
        """Record the first storage failure; wedge all later appends."""
        self.storage_errors += 1
        if self.io_error is None:
            self.io_error = str(exc) or type(exc).__name__
        return StorageError(
            f"storage failed on {self.server_id}: {self.io_error}"
        )

    def _check_writable(self) -> None:
        if self.io_error is not None:
            raise StorageError(
                f"storage failed on {self.server_id}: {self.io_error}"
            )

    def _append_entry(self, etype: int, client_id: str, payload: bytes,
                      fsync: bool) -> int:
        cid_raw = client_id.encode("utf-8")
        if len(cid_raw) > 16:
            raise FileStoreError(f"client id {client_id!r} exceeds 16 bytes")
        self._check_writable()
        offset = self._size
        buf = _ENTRY.pack(ENTRY_MAGIC, etype, cid_raw) + payload
        try:
            self.io.write(self._file, buf, _ETYPE_SITES[etype])
            if fsync:
                self.io.fsync(self._file, "log.fsync")
                self.fsyncs += 1
        except OSError as exc:
            raise self._wedge(exc) from exc
        self._size += len(buf)
        self.bytes_appended += len(buf)
        return offset

    def append_record(self, client_id: str, record: StoredRecord, *,
                      fsync: bool) -> None:
        """ServerWriteLog, durably.

        Duplicate retransmissions (already stored, identical) are
        dropped without touching the file; conflicting rewrites raise
        :class:`~repro.core.errors.ProtocolError` before any bytes are
        written.
        """
        self.records_appended += 1
        # Validate through the in-memory store first so a protocol
        # violation leaves the durable stream untouched; ``False``
        # means a duplicate retransmission, dropped without a write.
        if not self.mem.server_write_record(client_id, record):
            return
        offset = self._append_entry(
            E_RECORD, client_id, encode_stored_record(record), fsync
        )
        forest = self._forest(client_id)
        if record.lsn > (forest.high_key or 0):
            try:
                forest.append_key(record.lsn, offset)
            except OSError as exc:
                # The index is advisory (rebuilt from the log on
                # recovery), but a failing disk should wedge appends
                # all the same.
                raise self._wedge(exc) from exc

    def append_records(self, client_id: str,
                       records: tuple[StoredRecord, ...], *,
                       fsync: bool,
                       images: "Sequence[bytes] | None" = None) -> None:
        """Append a batch; one :meth:`sync` covers the whole batch.

        The whole batch becomes **one** buffered write (crash point
        ``log.write.record``, same as before — a torn multi-entry write
        truncates to the last complete entry on recovery, and none of
        the batch was acknowledged).  ``images`` optionally carries the
        raw wire image per record (from :func:`repro.net.codec.decode`)
        so the hot path never re-encodes; each image is byte-compatible
        with ``encode_stored_record``.

        The sync is unconditional even when every record was a
        duplicate retransmission: the originals may have arrived in
        unsynced WriteLogs, and the ForceLog ack promises durability.
        """
        cid_raw = client_id.encode("utf-8")
        if len(cid_raw) > 16:
            raise FileStoreError(f"client id {client_id!r} exceeds 16 bytes")
        header = _ENTRY.pack(ENTRY_MAGIC, E_RECORD, cid_raw)
        buf = bytearray()
        pending: list[tuple[LSN, int]] = []  # (lsn, entry offset)
        try:
            for i, record in enumerate(records):
                self.records_appended += 1
                # Validate through the in-memory store first so a
                # protocol violation leaves the durable stream with
                # exactly the records validated before it; ``False``
                # means a duplicate retransmission, dropped without
                # touching the file.
                if not self.mem.server_write_record(client_id, record):
                    continue
                image = (images[i] if images is not None
                         else encode_stored_record(record))
                pending.append((record.lsn, self._size + len(buf)))
                buf += header
                buf += image
        finally:
            # Flush whatever validated before a mid-batch protocol
            # error: the in-memory store already holds those records,
            # and mem must never run ahead of the durable stream.
            if buf:
                self._flush_record_batch(bytes(buf), client_id, pending)
        if fsync:
            self.sync()
        self._maybe_compact()

    def _flush_record_batch(self, buf: bytes, client_id: str,
                            pending: list[tuple[LSN, int]]) -> None:
        """One buffered write + one forest node for a validated batch."""
        self._check_writable()
        try:
            self.io.write(self._file, buf, "log.write.record")
        except OSError as exc:
            raise self._wedge(exc) from exc
        self._size += len(buf)
        self.bytes_appended += len(buf)
        forest = self._forest(client_id)
        high = forest.high_key or 0
        fresh = [(lsn, off) for lsn, off in pending if lsn > high]
        if not fresh:
            return
        try:
            lo, hi = fresh[0][0], fresh[-1][0]
            if hi - lo + 1 == len(fresh):
                # Consecutive batch LSNs: one multi-key node indexes
                # the whole group instead of one node per record.
                forest.append(lo, hi, tuple(off for _, off in fresh))
            else:
                for lsn, off in fresh:
                    forest.append_key(lsn, off)
        except OSError as exc:
            # The index is advisory (rebuilt from the log on recovery),
            # but a failing disk should wedge appends all the same.
            raise self._wedge(exc) from exc

    def sync(self, *, site: str = "log.fsync") -> None:
        """Make everything appended so far durable (flush + fsync).

        ``site`` names the fault-injection crash point charged for the
        fsync; the server's shared group commit passes
        ``"log.group-fsync"`` so power loss inside a sync that covers
        several parked clients is its own swept crash point.
        """
        self._check_writable()
        try:
            self.io.fsync(self._file, site)
        except OSError as exc:
            raise self._wedge(exc) from exc
        self.fsyncs += 1

    def stage_copy(self, client_id: str, record: StoredRecord) -> None:
        """CopyLog: durably stage a rewrite (installed atomically later)."""
        self.mem.copy_log(client_id, record.lsn, record.epoch,
                          record.present, record.data, record.kind)
        self._append_entry(E_STAGED, client_id,
                           encode_stored_record(record), fsync=False)

    def install_copies(self, client_id: str, epoch: Epoch) -> int:
        """InstallCopies: the install marker is the durable commit point."""
        epoch_bytes = struct.pack("!I", epoch)
        self._append_entry(
            E_INSTALL, client_id,
            _INSTALL.pack(epoch, zlib.crc32(epoch_bytes)), fsync=True,
        )
        return self.mem.install_copies(client_id, epoch)

    def generator_write(self, value: int) -> None:
        """Durably advance the Appendix I generator representative."""
        if value > self.generator_value:
            value_bytes = struct.pack("!Q", value)
            self._append_entry(
                E_GENERATOR, "", _GENERATOR.pack(value, zlib.crc32(value_bytes)),
                fsync=True,
            )
            self.generator_value = value

    # -- ownership fencing --------------------------------------------

    def fence_epoch(self, client_id: str) -> int:
        """The stream's standing fence epoch (0 = never fenced)."""
        return self.fence_epochs.get(client_id, 0)

    def fence_write(self, client_id: str, epoch: int) -> int:
        """Durably install ``epoch`` as the stream's fence; return the
        standing fence.

        Monotone like :meth:`generator_write`: a fence at or below the
        standing one writes nothing (two racing takeovers linearize on
        the generator's epoch order — the higher fence wins and the
        lower one is told so).  The entry is fsync'd before the call
        returns: a fence that is acknowledged must survive a crash, or
        the old writer could commit through a recovered server.
        """
        standing = self.fence_epochs.get(client_id, 0)
        if epoch > standing:
            epoch_bytes = struct.pack("!I", epoch)
            self._append_entry(
                E_FENCE, client_id,
                _FENCE.pack(epoch, zlib.crc32(epoch_bytes)), fsync=True,
            )
            self.fence_epochs[client_id] = epoch
            standing = epoch
        return standing

    # -- Section 5.3: log space management ------------------------------

    def truncate_below(self, client_id: str, low_water: LSN) -> int:
        """TruncateLog: reclaim a client's records below ``low_water``.

        Drops them from the replayed in-memory store (bounding daemon
        RSS) and compacts the append stream so the on-disk log shrinks
        too.  Returns the number of records dropped.  The mark is
        durable: either the compacted stream simply no longer contains
        the records, or — when nothing was stored below the mark — an
        ``E_TRUNCATE`` entry re-arms the late-retransmission guard on
        replay.
        """
        self._check_writable()
        dropped = self.mem.truncate_below(client_id, low_water)
        self.truncations += 1
        if dropped:
            self._compact()
        else:
            mark = self.mem.client_state(client_id).truncated_below
            if mark:
                mark_bytes = struct.pack("!I", mark)
                self._append_entry(
                    E_TRUNCATE, client_id,
                    _TRUNCATE.pack(mark, zlib.crc32(mark_bytes)), fsync=True,
                )
        return dropped

    def truncated_lsn(self, client_id: str) -> LSN:
        """The client's applied low-water mark (0 = never truncated)."""
        return self.mem.client_state(client_id).truncated_below

    def _maybe_compact(self) -> None:
        """The size-watermark fallback: compact when the log outgrows
        ``compact_watermark_bytes``, using whatever low-water marks the
        clients have already declared.

        A compaction that reclaims little would immediately re-trigger,
        so another pass is deferred until the file doubles past the
        last compacted size.
        """
        wm = self.compact_watermark_bytes
        if wm is None or self._size < wm or self.io_error is not None:
            return
        if self._size < 2 * self._last_compact_size:
            return
        self._compact()

    def _compact(self) -> None:
        """Rewrite ``log.dat`` as a checkpoint of the in-memory state.

        The compacted stream carries every standing fence epoch, then,
        per client: the truncation mark, every retained record in write
        order (a subsequence of a legally ordered stream is legally
        ordered), and any staged-but-uninstalled CopyLog records; plus
        the generator value.  Install
        markers are not rewritten — installed copies are already
        materialized as records.  Replaying the compacted stream
        reconstructs the exact same in-memory state.

        The rewrite goes to ``log.dat.tmp`` (fsync'd), then atomically
        replaces ``log.dat``; the append-forest index files are rebuilt
        against the new byte offsets.  The rewritten stream opens with
        an ``E_META`` entry carrying the incremented log generation, so
        index files built against the old stream can never be mistaken
        for current (see :class:`FilePageStore`).
        """
        self._check_writable()
        tmp_path = Path(str(self._log_path) + ".tmp")
        steady: dict[str, list[tuple[LSN, int]]] = {}
        size = 0
        generation = self.log_generation + 1
        try:
            out = self.io.open(tmp_path, "wb", "compact.open")
            try:
                def emit(etype: int, cid: str, payload: bytes) -> int:
                    nonlocal size
                    offset = size
                    buf = _ENTRY.pack(ENTRY_MAGIC, etype,
                                      cid.encode("utf-8")) + payload
                    self.io.write(out, buf, "compact.write")
                    size += len(buf)
                    return offset

                gen_bytes = struct.pack("!Q", generation)
                emit(E_META, "",
                     _GENERATOR.pack(generation, zlib.crc32(gen_bytes)))
                for cid in sorted(self.fence_epochs):
                    fence = self.fence_epochs[cid]
                    fence_bytes = struct.pack("!I", fence)
                    emit(E_FENCE, cid,
                         _FENCE.pack(fence, zlib.crc32(fence_bytes)))
                for client_id in self.mem.known_clients():
                    state = self.mem.client_state(client_id)
                    if state.truncated_below:
                        mark = state.truncated_below
                        mark_bytes = struct.pack("!I", mark)
                        emit(E_TRUNCATE, client_id,
                             _TRUNCATE.pack(mark, zlib.crc32(mark_bytes)))
                    for record in state.records:
                        offset = emit(E_RECORD, client_id,
                                      encode_stored_record(record))
                        steady.setdefault(client_id, []).append(
                            (record.lsn, offset)
                        )
                    for epoch in sorted(state.staged):
                        for record in state.staged[epoch]:
                            emit(E_STAGED, client_id,
                                 encode_stored_record(record))
                if self.generator_value:
                    value_bytes = struct.pack("!Q", self.generator_value)
                    emit(E_GENERATOR, "",
                         _GENERATOR.pack(self.generator_value,
                                         zlib.crc32(value_bytes)))
                self.io.fsync(out, "compact.fsync")
            finally:
                out.close()
            old_size = self._size
            self._file.close()
            self.io.replace(tmp_path, self._log_path, "compact.rename")
            self._file = self.io.open(self._log_path, "ab", "compact.reopen")
            self.io.fsync_dir(self.data_dir, "compact.dirsync")
        except OSError as exc:
            if self._file.closed:
                # The store wedges read-only, but reads (and the final
                # close) still go through ``self._file``: restore a
                # usable handle on whatever log.dat survived.
                try:
                    self._file = self.io.open(self._log_path, "ab",
                                              "log.open")
                except OSError:
                    pass
            raise self._wedge(exc) from exc
        self.log_generation = generation
        self._size = size
        self._last_compact_size = size
        self.compactions += 1
        self.reclaimed_bytes += max(0, old_size - size)
        self._rebuild_forests(steady)

    def _rebuild_forests(
        self, steady: dict[str, list[tuple[LSN, int]]]
    ) -> None:
        """Recreate every forest index against post-compaction offsets."""
        for forest in self._forests.values():
            forest.store.close()
        self._forests = {}
        try:
            for path in self.data_dir.glob("forest-*.idx"):
                self.io.unlink(path, "forest.unlink")
            for client_id, pairs in steady.items():
                forest = self._forest(client_id)
                high = 0
                for lsn, offset in pairs:
                    if lsn > high:
                        forest.append_key(lsn, offset)
                        high = lsn
        except OSError as exc:
            # The index is advisory (rebuilt from the log scan on
            # recovery), but a failing disk wedges appends all the same.
            raise self._wedge(exc) from exc

    # -- reads --------------------------------------------------------

    def interval_list(self, client_id: str) -> ServerIntervals:
        return self.mem.interval_list(client_id)

    def read_record(self, client_id: str, lsn: LSN) -> StoredRecord:
        return self.mem.server_read_log(client_id, lsn)

    def stored_lsns(self, client_id: str) -> list[LSN]:
        """All LSNs stored for a client, sorted (for ReadLog packing)."""
        return sorted(self.mem.client_state(client_id)._by_lsn)

    def client_high_lsn(self, client_id: str) -> LSN | None:
        return self.mem.client_state(client_id).high_lsn

    @property
    def log_size_bytes(self) -> int:
        """Current size of ``log.dat`` in bytes."""
        return self._size

    def record_count(self) -> int:
        """Records held in the replayed in-memory store (RSS proxy)."""
        return self.mem.record_count()

    def read_via_index(self, client_id: str, lsn: LSN) -> StoredRecord | None:
        """Point read through the durable path alone: forest → file.

        Returns ``None`` when the LSN is not in the forest (never
        appended, or re-written below the high-water mark and so served
        from replayed state instead).

        A rewrite is detected by epoch: InstallCopies replaces a record
        *in place* in the replayed state, but the forest — append-only,
        strictly increasing keys — still maps the LSN to the original
        append.  Found by ``repro crashsweep`` (crash point
        ``log.write.record:25``, any later restart): the index served
        the superseded pre-install record.  The next compaction
        re-indexes the winning copy and the entry becomes valid again.
        """
        forest = self._forests.get(client_id)
        if forest is None:
            return None
        try:
            offset = forest.search(lsn)
        except KeyError:
            return None
        if not self._file.closed:
            self._file.flush()
        with open(self._log_path, "rb") as fh:
            fh.seek(offset + _ENTRY.size)
            header = fh.read(RECORD_HEADER_BYTES)
            (dlen,) = struct.unpack_from("!H", header, 10)
            record, _ = decode_stored_record(header + fh.read(dlen), 0)
        current = self.mem.client_state(client_id).lookup(lsn)
        if current is not None and current.epoch != record.epoch:
            return None  # stale index entry: the record was re-written
        return record

    def forest(self, client_id: str) -> AppendForest | None:
        """The client's index forest (for tests and diagnostics)."""
        return self._forests.get(client_id)

    def _forest(self, client_id: str) -> AppendForest:
        forest = self._forests.get(client_id)
        if forest is None:
            path = self.data_dir / f"forest-{_client_file_tag(client_id)}.idx"
            forest = AppendForest(FilePageStore(
                path, self.io, generation=self.log_generation
            ))
            forest.rebuild_from_store()
            self._forests[client_id] = forest
        return forest

    # -- lifecycle ----------------------------------------------------

    @property
    def injected_faults(self) -> int:
        """Faults the I/O backend injected (0 under the passthrough)."""
        return self.io.faults_injected

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()
        for forest in self._forests.values():
            forest.store.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        for forest in self._forests.values():
            forest.store.close()

"""The asyncio log-server daemon.

A real-process implementation of the grouped/streamed client–server
protocol of Section 4.2 (Figure 4-1) over TCP:

* **asynchronous** WriteLog and NewInterval — no reply; the server
  watches for LSN gaps and sends the MissingInterval negative
  acknowledgment ("a server detects lost messages when it receives a
  ForceLog or WriteLog message with log sequence numbers that are not
  contiguous with those it has previously received");
* **synchronous** ForceLog — the batch is appended, fsync'd, and
  acknowledged with NewHighLSN only once durable;
* **synchronous calls** IntervalList, ReadLogForward, ReadLogBackward
  (each reply packs as many records as fit in one LAN packet budget),
  CopyLog, InstallCopies, and the Appendix I generator Read/Write;
* **operational messages**: Ping/Pong keep-alive probes, the Section
  5.3 TruncateLog call ("records below the truncation point will never
  be read again" — the store compacts and forgets them), and a Stats
  query exposing daemon and store counters (``repro stats``).  A
  storage failure (disk full, IO error) answers with a typed
  ErrorReply instead of dropping the connection, leaving the daemon
  readable while wedged.

One daemon serves many clients over many connections; per-client gap
tracking is daemon-wide, seeded from the durable high-water mark after
a restart.  Handlers run inline on the event loop — including the
``fsync`` — so a force acts as a natural group-commit barrier for
every connection, the same economy the paper's grouped interface is
designed around.

Group commit is explicit, not just incidental: a ForceLog appends its
records *without* syncing and parks on a shared sync generation; a
single scheduled task then issues one ``fsync`` (crash point
``log.group-fsync``) covering every force parked so far — across all
client connections — and fans the NewHighLSN acks out afterwards.  An
ack is only ever sent for bytes the covering fsync returned for, so
the FaultFS/ALICE crash model is preserved: power loss inside the
shared sync loses *every* parked force's records and *no* ack has been
sent for any of them.
"""

from __future__ import annotations

import asyncio
import logging
import time
from bisect import bisect_left, bisect_right
from typing import Mapping

from ..core.errors import LogError, ProtocolError, RecordNotStored, StorageError
from ..core.records import LSN, StoredRecord
from ..net.codec import FrameReader, frame, frame_new_high_lsn
from ..net.messages import (
    ERR_FENCED,
    ERR_GENERIC,
    ERR_PROTOCOL,
    ERR_QUOTA,
    ERR_STORAGE,
    RECORD_HEADER_BYTES,
    STATS_COUNTERS,
    AckReply,
    CopyLogCall,
    ErrorReply,
    FenceLogCall,
    FenceReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    Message,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    PingMsg,
    PongMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    StatsCall,
    StatsReply,
    TruncateLogCall,
    TruncateReply,
    WriteLogMsg,
)
from ..net.packet import PACKET_PAYLOAD_BYTES
from .faultfs import FaultInjector, parse_fault_plans
from .filestore import FileLogStore
from .placement import TenantQuota, load_cluster_spec, tenant_of

log = logging.getLogger(__name__)


class LogServerDaemon:
    """One log-server node: a TCP endpoint over a :class:`FileLogStore`."""

    def __init__(
        self,
        store: FileLogStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_budget_bytes: int = PACKET_PAYLOAD_BYTES,
        group_commit: bool = True,
        quotas: Mapping[str, TenantQuota] | None = None,
    ):
        self.store = store
        self.host = host
        self.port = port
        self.read_budget_bytes = read_budget_bytes
        #: tenant → admission limits ("*" is the default tenant); empty
        #: means no multi-tenant admission control at all.
        self.quotas: dict[str, TenantQuota] = dict(quotas or {})
        #: when set (the default), concurrent ForceLogs share one fsync
        #: via the parked sync generation; clearing it restores the
        #: inline append+fsync+ack path of :meth:`_dispatch`.
        self.group_commit = group_commit
        self._server: asyncio.AbstractServer | None = None
        #: next LSN expected per client ("contiguous with those it has
        #: previously received"); absent ⇒ seed from the durable high.
        self._expected: dict[str, LSN] = {}
        #: forces parked on the current sync generation:
        #: (connection writer, client id, high LSN to acknowledge).
        self._parked_forces: list[
            tuple[asyncio.StreamWriter, str, LSN]] = []
        self._sync_task: asyncio.Task | None = None
        self._sync_wanted = asyncio.Event()
        #: tenant → {client stream: last-activity monotonic time}.  A
        #: stream slot is sticky while active; a tenant quota with an
        #: ``idle_ttl_s`` lets slots idle out and be reclaimed, so
        #: tenants can churn stream ids without a daemon restart.
        self._tenant_streams: dict[str, dict[str, float]] = {}
        #: tenant → [tokens, last_refill] for the records/s bucket.
        self._tenant_buckets: dict[str, list[float]] = {}
        self.quota_rejections = 0
        self.messages_handled = 0
        self.missing_intervals_sent = 0
        self.forces_acked = 0
        self.pings_answered = 0
        #: forces that shared a predecessor's fsync (size-1 groups add 0).
        self.forces_coalesced = 0
        #: shared group syncs issued (≤ forces when coalescing works).
        self.group_syncs = 0
        #: buffers handed to the transport via vectored reply writes.
        self.send_iovecs = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._sync_task is not None and not self._sync_task.done():
            self._sync_task.cancel()
            try:
                await self._sync_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.store.close()

    # -- connection handling ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frames = FrameReader(reader)
        images: list[bytes] = []
        try:
            while True:
                images.clear()
                msg = await frames.read_message(images)
                if msg is None:
                    break
                self.messages_handled += 1
                denial = self._fence_denial(msg)
                if denial is None and self.quotas \
                        and isinstance(msg, WriteLogMsg):
                    denial = self._admit(msg)
                if denial is not None:
                    replies = [denial]
                elif self.group_commit and isinstance(msg, ForceLogMsg):
                    replies = self._park_force(msg, writer, images)
                else:
                    replies = self._dispatch(msg, images)
                if replies:
                    self._write_replies(writer, replies)
                    await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:
            log.exception("connection handler failed on %s",
                          self.store.server_id)
        finally:
            frames.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # server shutdown cancels handlers mid-close; swallow
                # so the cancellation doesn't surface as loop noise
                pass

    def _write_replies(self, writer: asyncio.StreamWriter,
                       replies: list[Message]) -> None:
        bufs = [frame(reply) for reply in replies]
        writer.writelines(bufs)
        self.send_iovecs += len(bufs)

    # -- group commit --------------------------------------------------

    def _park_force(self, msg: ForceLogMsg, writer: asyncio.StreamWriter,
                    images: list[bytes] | None = None) -> list[Message]:
        """Append a ForceLog's records and park it on the shared sync.

        Anything that must be said *before* durability — the
        MissingInterval NAK for a gap, a typed error for a failed
        append — is returned for an inline reply exactly as on the
        ungrouped path.  The NewHighLSN ack is not: it fans out from
        :meth:`_sync_loop` after the one fsync that covers every
        parked force, and never before.
        """
        out = self._on_write(msg, force=False, images=images)
        if any(isinstance(reply, ErrorReply) for reply in out):
            return out  # nothing was appended; nothing to acknowledge
        self._parked_forces.append((writer, msg.client_id, msg.high_lsn))
        if self._sync_task is None or self._sync_task.done():
            self._sync_task = asyncio.create_task(self._sync_loop())
        self._sync_wanted.set()
        return out

    async def _sync_loop(self) -> None:
        """The long-lived group-commit worker: one fsync per generation.

        Parked on an :class:`asyncio.Event` between generations (no
        per-force task creation).  One scheduling yield before each
        fsync: connection handlers that already hold complete frames in
        their receive buffers get to park their forces on this
        generation, so concurrent clients share the fsync instead of
        paying one each.
        """
        while True:
            await self._sync_wanted.wait()
            self._sync_wanted.clear()
            await asyncio.sleep(0)
            while self._parked_forces:
                batch = self._parked_forces
                self._parked_forces = []
                try:
                    self.store.sync(site="log.group-fsync")
                except LogError as exc:
                    code = _error_code(exc)
                    for writer, client_id, _high in batch:
                        self._reply_safely(writer, [
                            ErrorReply(client_id, str(exc), code=code)])
                    continue
                self.group_syncs += 1
                self.forces_coalesced += len(batch) - 1
                acks: dict[
                    int, tuple[asyncio.StreamWriter, list[bytes]]] = {}
                for writer, client_id, high in batch:
                    entry = acks.setdefault(id(writer), (writer, []))
                    entry[1].append(frame_new_high_lsn(client_id, high))
                    self.forces_acked += 1
                for writer, bufs in acks.values():
                    self._write_frames_safely(writer, bufs)

    def _reply_safely(self, writer: asyncio.StreamWriter,
                      replies: list[Message]) -> None:
        """Write replies to a connection that may have died meanwhile."""
        self._write_frames_safely(writer, [frame(r) for r in replies])

    def _write_frames_safely(self, writer: asyncio.StreamWriter,
                             bufs: list[bytes]) -> None:
        """Vectored write to a connection that may have died meanwhile."""
        try:
            if not writer.is_closing():
                writer.writelines(bufs)
                self.send_iovecs += len(bufs)
        except (ConnectionError, OSError):  # pragma: no cover - races
            pass

    # -- ownership fencing ---------------------------------------------

    def _fence_denial(self, msg: Message) -> ErrorReply | None:
        """Refuse a stale-epoch append/truncate on a fenced stream.

        Checked *before* admission and before any byte reaches the
        store, so a fenced writer's ForceLog is neither appended nor
        parked for group commit — it provably commits nothing.
        NewInterval is covered too: a fenced writer must not move the
        stream's interval expectation out from under the new owner.
        Epoch 0 (a legacy/unfenced caller) passes only while no fence
        exists.
        """
        if not isinstance(msg, (WriteLogMsg, NewIntervalMsg,
                                TruncateLogCall)):
            return None
        fence = self.store.fence_epoch(msg.client_id)
        if fence and msg.epoch < fence:
            self.store.fence_rejections += 1
            return ErrorReply(
                msg.client_id,
                f"stream fenced at epoch {fence}; "
                f"epoch {msg.epoch} is superseded",
                code=ERR_FENCED,
            )
        return None

    def _on_fence(self, msg: FenceLogCall) -> list[Message]:
        """Durably install a fence epoch for the client's stream.

        Monotone: an attempt below the standing fence is answered with
        ``ERR_FENCED`` (the *installer* lost a takeover race and must
        stop, exactly like a fenced writer), an equal attempt is an
        idempotent retransmission, and a higher one is fsync'd before
        the acknowledging :class:`FenceReply` leaves the daemon.
        """
        standing = self.store.fence_write(msg.client_id, msg.epoch)
        if standing > msg.epoch:
            self.store.fence_rejections += 1
            return [ErrorReply(
                msg.client_id,
                f"stream fenced at epoch {standing}; "
                f"epoch {msg.epoch} is superseded",
                code=ERR_FENCED,
            )]
        return [FenceReply(msg.client_id, epoch=standing)]

    # -- multi-tenant admission ----------------------------------------

    def _admit(self, msg: WriteLogMsg) -> ErrorReply | None:
        """Enforce the tenant's quota on a WriteLog/ForceLog.

        Stream admission counts distinct client ids per tenant; the
        records/s limit is a token bucket charged per *forced* record
        (a force re-sends its whole unacknowledged window, so charging
        forces meters exactly what gets durably acknowledged — streamed
        WriteLogs ride free until their covering force).  A denial is a
        typed ``ErrorReply`` (``ERR_QUOTA``) and nothing is appended,
        the same reply shape a wedged disk produces — clients already
        know how to react to a refused call, they just back off instead
        of switching servers.

        When the quota sets ``idle_ttl_s``, a full stream table is
        swept before refusing a new stream: slots whose last activity
        is older than the TTL are evicted, so a tenant that churns
        short-lived stream ids is re-admitted instead of being wedged
        behind dead slots until the daemon restarts.
        """
        tenant = tenant_of(msg.client_id)
        quota = self.quotas.get(tenant)
        if quota is None:
            quota = self.quotas.get("*")
        if quota is None:
            return None
        streams = self._tenant_streams.setdefault(tenant, {})
        now = time.monotonic()
        if msg.client_id not in streams:
            if quota.idle_ttl_s and quota.max_streams \
                    and len(streams) >= quota.max_streams:
                cutoff = now - quota.idle_ttl_s
                for cid in [c for c, last in streams.items()
                            if last <= cutoff]:
                    del streams[cid]
            if quota.max_streams and len(streams) >= quota.max_streams:
                self.quota_rejections += 1
                return ErrorReply(
                    msg.client_id,
                    f"tenant {tenant!r} stream quota "
                    f"({quota.max_streams}) exhausted",
                    code=ERR_QUOTA,
                )
        streams[msg.client_id] = now
        if quota.max_records_per_s and isinstance(msg, ForceLogMsg):
            now = time.monotonic()
            bucket = self._tenant_buckets.get(tenant)
            capacity = quota.max_records_per_s * max(quota.burst_s, 0.001)
            if bucket is None:
                bucket = [capacity, now]
                self._tenant_buckets[tenant] = bucket
            tokens = min(capacity,
                         bucket[0] + (now - bucket[1])
                         * quota.max_records_per_s)
            bucket[1] = now
            if tokens < len(msg.records):
                bucket[0] = tokens
                self.quota_rejections += 1
                return ErrorReply(
                    msg.client_id,
                    f"tenant {tenant!r} over {quota.max_records_per_s:g} "
                    f"records/s",
                    code=ERR_QUOTA,
                )
            bucket[0] = tokens - len(msg.records)
        return None

    # -- dispatch -----------------------------------------------------

    def _dispatch(self, msg: Message,
                  images: list[bytes] | None = None) -> list[Message]:
        # ForceLogMsg subclasses WriteLogMsg: test it first.
        if isinstance(msg, ForceLogMsg):
            return self._on_write(msg, force=True, images=images)
        if isinstance(msg, WriteLogMsg):
            return self._on_write(msg, force=False, images=images)
        if isinstance(msg, NewIntervalMsg):
            self._expected[msg.client_id] = msg.starting_lsn
            return []
        if isinstance(msg, IntervalListCall):
            report = self.store.interval_list(msg.client_id)
            return [IntervalListReply(msg.client_id, report.intervals)]
        if isinstance(msg, ReadLogForwardCall):
            return [self._on_read(msg.client_id, msg.lsn, forward=True)]
        if isinstance(msg, ReadLogBackwardCall):
            return [self._on_read(msg.client_id, msg.lsn, forward=False)]
        if isinstance(msg, CopyLogCall):
            return self._guarded(msg, self._on_copy)
        if isinstance(msg, InstallCopiesCall):
            return self._guarded(msg, self._on_install)
        if isinstance(msg, GeneratorReadCall):
            return [GeneratorReadReply(msg.client_id,
                                       self.store.generator_value)]
        if isinstance(msg, GeneratorWriteCall):
            self.store.generator_write(msg.value)
            return [AckReply(msg.client_id, ok=True)]
        if isinstance(msg, PingMsg):
            self.pings_answered += 1
            return [PongMsg(msg.client_id, token=msg.token)]
        if isinstance(msg, TruncateLogCall):
            return self._guarded(msg, self._on_truncate)
        if isinstance(msg, FenceLogCall):
            return self._guarded(msg, self._on_fence)
        if isinstance(msg, StatsCall):
            return [self._on_stats(msg)]
        return [ErrorReply(msg.client_id,
                           f"unhandled message {type(msg).__name__}",
                           code=ERR_PROTOCOL)]

    def _guarded(self, msg: Message, handler) -> list[Message]:
        try:
            return handler(msg)
        except LogError as exc:
            return [ErrorReply(msg.client_id, str(exc),
                               code=_error_code(exc))]

    def _on_write(self, msg: WriteLogMsg, *, force: bool,
                  images: list[bytes] | None = None) -> list[Message]:
        client_id = msg.client_id
        out: list[Message] = []
        expected = self._expected.get(client_id)
        if expected is None:
            high = self.store.client_high_lsn(client_id)
            expected = high + 1 if high is not None else None
        if expected is not None and msg.low_lsn > expected:
            out.append(MissingIntervalMsg(client_id, lo=expected,
                                          hi=msg.low_lsn - 1))
            self.missing_intervals_sent += 1
        if images is not None and len(images) != len(msg.records):
            images = None  # defensive: only trust an aligned capture
        try:
            self.store.append_records(client_id, msg.records, fsync=force,
                                      images=images)
        except LogError as exc:
            out.append(ErrorReply(client_id, str(exc),
                                  code=_error_code(exc)))
            return out
        self._expected[client_id] = msg.high_lsn + 1
        if force:
            out.append(NewHighLSNMsg(client_id, new_high_lsn=msg.high_lsn))
            self.forces_acked += 1
        return out

    def _on_read(self, client_id: str, lsn: LSN, *, forward: bool) -> Message:
        """Pack stored records around ``lsn``, as many as fit a packet.

        Reads start at the requested LSN when it is stored, else at the
        nearest stored LSN in the scan direction; the reply carries the
        highest-epoch copy of each.  An empty reply means the server
        stores nothing on that side.
        """
        lsns = self.store.stored_lsns(client_id)
        picked: list[StoredRecord] = []
        budget = self.read_budget_bytes
        if forward:
            index = bisect_left(lsns, lsn)
            step = 1
        else:
            index = bisect_right(lsns, lsn) - 1
            step = -1
        while 0 <= index < len(lsns) and budget > 0:
            try:
                record = self.store.read_record(client_id, lsns[index])
            except RecordNotStored:  # pragma: no cover - lsns() is stored
                break
            cost = RECORD_HEADER_BYTES + len(record.data)
            if picked and cost > budget:
                break
            budget -= cost
            picked.append(record)
            index += step
        if not forward:
            picked.reverse()
        return ReadLogReply(client_id, tuple(picked))

    def _on_copy(self, msg: CopyLogCall) -> list[Message]:
        for record in msg.records:
            self.store.stage_copy(msg.client_id, record)
        return [AckReply(msg.client_id, ok=True)]

    def _on_install(self, msg: InstallCopiesCall) -> list[Message]:
        self.store.install_copies(msg.client_id, msg.epoch)
        return [AckReply(msg.client_id, ok=True)]

    # -- Section 5.3: log space management -----------------------------

    def _on_truncate(self, msg: TruncateLogCall) -> list[Message]:
        """Reclaim everything below the client's low-water LSN.

        The paper's Section 5.3 lets a client tell its servers that log
        records below a truncation point "will never be read again";
        the store drops them from memory, compacts the on-disk log, and
        remembers the mark so a post-restart replay (or a late
        retransmission) cannot resurrect reclaimed records.
        """
        dropped = self.store.truncate_below(msg.client_id,
                                            msg.low_water_lsn)
        expected = self._expected.get(msg.client_id)
        if expected is not None and expected < msg.low_water_lsn:
            # Gap tracking must never NAK for reclaimed LSNs.
            self._expected[msg.client_id] = msg.low_water_lsn
        return [TruncateReply(msg.client_id,
                              low_water_lsn=msg.low_water_lsn,
                              records_dropped=dropped)]

    def _on_stats(self, msg: StatsCall) -> Message:
        store = self.store
        values = {
            "messages_handled": self.messages_handled,
            "missing_intervals_sent": self.missing_intervals_sent,
            "forces_acked": self.forces_acked,
            "pings_answered": self.pings_answered,
            "bytes_appended": store.bytes_appended,
            "log_bytes": store.log_size_bytes,
            "store_records": store.record_count(),
            "truncations": store.truncations,
            "truncated_lsn": store.truncated_lsn(msg.client_id),
            "storage_errors": store.storage_errors,
            "injected_faults": store.injected_faults,
            "recovery_replays": store.recovered_entries,
            "crc_rejections": store.crc_rejections,
            "fsyncs": store.fsyncs,
            "records_per_fsync": (
                store.records_appended // store.fsyncs
                if store.fsyncs else 0),
            "forces_coalesced": self.forces_coalesced,
            "send_iovecs": self.send_iovecs,
            "quota_rejections": self.quota_rejections,
            "tenant_streams": sum(len(s)
                                  for s in self._tenant_streams.values()),
            "fence_rejections": store.fence_rejections,
            "fence_epoch": store.fence_epoch(msg.client_id),
        }
        counters = tuple(values[name] for name in STATS_COUNTERS)
        return StatsReply(msg.client_id, counters)


def _error_code(exc: LogError) -> int:
    if isinstance(exc, StorageError):
        return ERR_STORAGE
    if isinstance(exc, ProtocolError):
        return ERR_PROTOCOL
    return ERR_GENERIC


async def run_server(
    data_dir: str,
    server_id: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    announce=print,
    ready: "asyncio.Event | None" = None,
    compact_watermark_bytes: int | None = None,
    fault_plan: str | None = None,
    fault_trace: str | None = None,
    group_commit: bool = True,
    cluster_spec: str | None = None,
) -> None:
    """Run one daemon until cancelled (the ``repro serve`` entry point).

    Prints ``REPRO-SERVE <server_id> <host> <port>`` once listening so
    a parent process (:mod:`repro.rt.cluster`) can harvest the
    ephemeral port.

    ``cluster_spec`` names a ``placements.json`` file; the daemon reads
    its per-tenant quotas (the roster section is for clients — the
    daemon still binds ``host:port`` from its own arguments, since
    harness-spawned daemons use ephemeral ports the spec cannot know).

    ``fault_plan`` (comma-separated ``site:index:action`` specs) arms
    storage faults via :class:`~repro.rt.faultfs.FaultInjector`; an
    injected power loss exits the process with status 86 after printing
    ``REPRO-FAULT-CRASH <site>:<index>`` to stderr.  ``fault_trace``
    appends every I/O crash point hit to a file, which is how the
    sweep harness enumerates a daemon workload's points.
    """
    io = None
    if fault_plan is not None or fault_trace is not None:
        plans = parse_fault_plans(fault_plan) if fault_plan else ()
        io = FaultInjector(plans, mode="exit", trace_path=fault_trace)
    quotas = (load_cluster_spec(cluster_spec).quotas
              if cluster_spec is not None else None)
    store = FileLogStore(data_dir, server_id,
                         compact_watermark_bytes=compact_watermark_bytes,
                         io=io)
    daemon = LogServerDaemon(store, host, port, group_commit=group_commit,
                             quotas=quotas)
    await daemon.start()
    announce(f"REPRO-SERVE {server_id} {daemon.host} {daemon.port}",
             flush=True)
    if ready is not None:
        ready.set()
    try:
        await daemon.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await daemon.close()

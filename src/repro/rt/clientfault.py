"""Protocol-level crash points for the replicated-log *client*.

:mod:`repro.rt.faultfs` kills a server at an exact storage I/O; this
module does the same to :class:`~repro.rt.client.AsyncReplicatedLog`
at an exact **protocol step**.  The client code is instrumented with
:func:`hit` calls naming a site — after a WriteLog batch is streamed,
before/after ForceLog acknowledgments (including after a *partial*
ack), mid write-set switch, and between each step of the Section 5.4
restart procedure (interval-list merge, epoch bump, CopyLog, guard
staging, InstallCopies).  The ``(site, index)`` pair of the
``index``-th invocation of a site is a deterministic crash point, so
``repro crashsweep --client`` can kill a real client OS process at
every point a scripted workload reaches and check that a second
process restarting per Section 5.4 sees exactly the acked records.

With no injector installed (the default), :func:`hit` is a dictionary
miss and a ``None`` check — the production write path stays clean.
A worker process installs one from the environment
(:func:`install_from_env`, variables ``REPRO_CLIENT_FAULT_PLAN`` and
``REPRO_CLIENT_FAULT_TRACE``); plans reuse the
``SITE:IDX:ACTION`` grammar of :func:`repro.rt.faultfs.parse_fault_plans`
with the client action vocabulary:

``exit``
    print ``REPRO-FAULT-CRASH <site>:<index>`` to stderr and
    ``os._exit`` with :data:`~repro.rt.faultfs.FAULT_EXIT_CODE` — the
    daemon-style injected death the harness recognizes;
``sigkill``
    ``SIGKILL`` our own process — no banner, no atexit, the hardest
    kill the OS offers;
``raise``
    raise :class:`ClientCrash` in-process (unit tests).  Like
    :class:`~repro.rt.faultfs.PowerLoss` it is a ``BaseException`` so
    the client's ``except OSError``/``ServerUnavailable`` routing can
    never swallow an injected death.
"""

from __future__ import annotations

import os
import signal
import sys
from pathlib import Path

from .faultfs import (
    CLIENT_ACTIONS,
    CRASH_BANNER,
    FAULT_EXIT_CODE,
    FaultPlan,
    parse_fault_plans,
)

#: Environment variables the worker-process entry points read.
PLAN_ENV = "REPRO_CLIENT_FAULT_PLAN"
TRACE_ENV = "REPRO_CLIENT_FAULT_TRACE"


class ClientCrash(BaseException):
    """The client process died at ``point`` (in-process simulation)."""

    def __init__(self, point: str):
        super().__init__(point)
        self.point = point


class ClientFaultInjector:
    """Count protocol-site invocations; kill the armed one.

    With no plans this is a pure recorder: every point reached is
    appended to :attr:`trace` (and ``trace_path``, line-buffered, so
    the trace survives the kill), which is how the sweep enumerates a
    workload's client crash points.
    """

    def __init__(self, plans: tuple[FaultPlan, ...] = (), *,
                 trace_path: str | Path | None = None):
        self.plans = tuple(plans)
        self.counts: dict[str, int] = {}
        self.trace: list[str] = []
        self.crashes = 0
        self._trace_file = None
        if trace_path is not None:
            self._trace_file = open(trace_path, "a", buffering=1)

    def hit(self, site: str) -> None:
        """Record one invocation of ``site``; crash if it is armed."""
        index = self.counts.get(site, 0)
        self.counts[site] = index + 1
        point = f"{site}:{index}"
        self.trace.append(point)
        if self._trace_file is not None:
            self._trace_file.write(point + "\n")
        for plan in self.plans:
            if plan.site == site and plan.index == index:
                self._crash(point, plan.action)

    def _crash(self, point: str, action: str) -> None:
        self.crashes += 1
        if action == "exit":
            print(f"{CRASH_BANNER} {point}", file=sys.stderr, flush=True)
            os._exit(FAULT_EXIT_CODE)
        if action == "sigkill":
            sys.stderr.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        raise ClientCrash(point)

    def close(self) -> None:
        if self._trace_file is not None and not self._trace_file.closed:
            self._trace_file.close()


#: The process-wide injector ``hit`` consults; ``None`` = production.
_injector: ClientFaultInjector | None = None


def install(injector: ClientFaultInjector | None) -> None:
    """Install (or with ``None`` remove) the process-wide injector."""
    global _injector
    _injector = injector


def installed() -> ClientFaultInjector | None:
    return _injector


def install_from_env() -> ClientFaultInjector | None:
    """Install an injector if the fault environment variables are set.

    Returns the injector (so a worker can close its trace file), or
    ``None`` when neither variable is present.  The plan string uses
    the client action vocabulary; malformed plans raise
    :class:`~repro.rt.faultfs.FaultSpecError` before any workload runs.
    """
    plan_s = os.environ.get(PLAN_ENV)
    trace = os.environ.get(TRACE_ENV)
    if not plan_s and not trace:
        return None
    plans = parse_fault_plans(plan_s, actions=CLIENT_ACTIONS) \
        if plan_s else ()
    injector = ClientFaultInjector(plans, trace_path=trace)
    install(injector)
    return injector


def hit(site: str) -> None:
    """The instrumentation hook :mod:`repro.rt.client` calls."""
    if _injector is not None:
        _injector.hit(site)

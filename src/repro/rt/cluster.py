"""Loopback cluster harness: M log-server daemons as real OS processes.

Spawns ``python -m repro serve`` subprocesses on 127.0.0.1 with
ephemeral ports, harvesting each daemon's ``REPRO-SERVE <server_id>
<host> <port>`` banner from stdout.  Tests and benchmarks use it to
exercise the runtime across genuine process boundaries — a SIGKILLed
server really loses its event loop, OS buffers, and sockets, and a
restarted one really recovers from its fsync'd files.

Server data directories live under ``root_dir/<server_id>/``; stderr
goes to ``root_dir/<server_id>/server.log`` for post-mortems.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path


def _repo_src_dir() -> str:
    """The ``src/`` directory containing the ``repro`` package."""
    return str(Path(__file__).resolve().parents[2])


@dataclass
class ServerProcess:
    """One spawned log-server daemon and how to reach it."""

    server_id: str
    data_dir: str
    host: str = ""
    port: int = 0
    process: subprocess.Popen | None = field(default=None, repr=False)
    log_file: object = field(default=None, repr=False)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class LoopbackCluster:
    """Spawn and manage M daemon processes on the loopback interface.

    Usable as a context manager::

        with LoopbackCluster(root_dir, num_servers=3) as cluster:
            log = AsyncReplicatedLog("c", cluster.addresses(), config)
            ...
            cluster.kill("s1")       # SIGKILL: no goodbye, no flush
            cluster.restart("s1")    # recovers from its fsync'd files
    """

    def __init__(
        self,
        root_dir: str,
        num_servers: int = 3,
        *,
        startup_timeout: float = 15.0,
        server_args: list[str] | None = None,
    ):
        self.root_dir = str(root_dir)
        self.startup_timeout = startup_timeout
        #: extra ``repro serve`` CLI arguments applied to every spawn
        #: (e.g. ``["--compact-watermark-bytes", "65536"]``).
        self.server_args = list(server_args or [])
        self.servers: dict[str, ServerProcess] = {}
        for i in range(num_servers):
            sid = f"s{i + 1}"
            data_dir = os.path.join(self.root_dir, sid)
            os.makedirs(data_dir, exist_ok=True)
            self.servers[sid] = ServerProcess(server_id=sid,
                                              data_dir=data_dir)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start every daemon, overlapping their startups.

        All processes are spawned before any banner is awaited, so a
        cold M-daemon start costs max(daemon init), not the sum — the
        client crash sweep starts a fresh 3-daemon cluster per case
        and feels the difference directly.
        """
        started = [self._spawn(sid) for sid in self.servers
                   if not self.servers[sid].alive]
        for entry in started:
            self._await_banner(entry)

    def start_server(self, server_id: str,
                     extra_args: list[str] | None = None) -> ServerProcess:
        """Launch (or relaunch) one daemon and wait for its banner.

        ``extra_args`` are one-shot ``repro serve`` arguments for this
        spawn only (e.g. ``["--fault-plan", "log.fsync:3:power-loss"]``
        in a crash sweep — the restart after the injected crash must
        not re-arm the fault).
        """
        entry = self.servers[server_id]
        if entry.alive:
            return entry
        self._spawn(server_id, extra_args)
        self._await_banner(entry)
        return entry

    def _spawn(self, server_id: str,
               extra_args: list[str] | None = None) -> ServerProcess:
        """Fork one daemon process without waiting for its banner."""
        entry = self.servers[server_id]
        env = dict(os.environ)
        env["PYTHONPATH"] = _repo_src_dir() + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        log_path = os.path.join(entry.data_dir, "server.log")
        entry.log_file = open(log_path, "ab")
        entry.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--data-dir", entry.data_dir,
             "--server-id", server_id,
             "--port", "0"]
            + self.server_args + list(extra_args or []),
            stdout=subprocess.PIPE,
            stderr=entry.log_file,
            env=env,
        )
        return entry

    def _await_banner(self, entry: ServerProcess) -> None:
        """Block until the daemon prints ``REPRO-SERVE <id> <host> <port>``."""
        deadline = time.monotonic() + self.startup_timeout
        assert entry.process is not None and entry.process.stdout is not None
        while time.monotonic() < deadline:
            line = entry.process.stdout.readline()
            if not line:
                if entry.process.poll() is not None:
                    raise RuntimeError(
                        f"server {entry.server_id} exited with "
                        f"{entry.process.returncode} before announcing; "
                        f"see {entry.data_dir}/server.log"
                    )
                continue
            parts = line.decode("utf-8", "replace").split()
            if len(parts) == 4 and parts[0] == "REPRO-SERVE":
                entry.host, entry.port = parts[2], int(parts[3])
                return
        raise TimeoutError(
            f"server {entry.server_id} did not announce within "
            f"{self.startup_timeout}s"
        )

    def kill(self, server_id: str) -> None:
        """SIGKILL a daemon — the crash the paper's design tolerates."""
        entry = self.servers[server_id]
        if entry.process is not None and entry.process.poll() is None:
            entry.process.send_signal(signal.SIGKILL)
            entry.process.wait()
        self._close_log(entry)

    def suspend(self, server_id: str) -> None:
        """SIGSTOP a daemon: the gray failure a crash detector misses.

        The process keeps its sockets; the kernel keeps accepting TCP
        payloads into its receive buffer, so connects and small sends
        still *succeed* — only replies stop coming.  Exactly the hang
        the client's keep-alive probes exist to catch.
        """
        entry = self.servers[server_id]
        if entry.process is not None and entry.process.poll() is None:
            entry.process.send_signal(signal.SIGSTOP)

    def resume(self, server_id: str) -> None:
        """SIGCONT a suspended daemon; it resumes where it stopped."""
        entry = self.servers[server_id]
        if entry.process is not None and entry.process.poll() is None:
            entry.process.send_signal(signal.SIGCONT)

    def wait(self, server_id: str, timeout: float = 30.0) -> int:
        """Wait for a daemon to exit on its own; return its exit status.

        Used by the crash sweep: a daemon with an armed fault plan
        exits with :data:`repro.rt.faultfs.FAULT_EXIT_CODE` when the
        injected power loss fires.
        """
        entry = self.servers[server_id]
        assert entry.process is not None, "server was never started"
        code = entry.process.wait(timeout=timeout)
        self._close_log(entry)
        return code

    def restart(self, server_id: str,
                extra_args: list[str] | None = None) -> ServerProcess:
        """Bring a killed daemon back on a fresh ephemeral port."""
        self.kill(server_id)
        return self.start_server(server_id, extra_args)

    def revive(self, armed: list[str] | None = None) -> list[str]:
        """Restore the fleet to a clean, fully-alive state.

        ``armed`` names servers that were started with a one-shot
        ``--fault-plan``: they are restarted unconditionally (the plan
        may not have fired yet, and verification traffic must not trip
        it).  Any other daemon that died — an injected storage crash
        exits with :data:`~repro.rt.faultfs.FAULT_EXIT_CODE` mid-case —
        is started fresh without a plan.  Returns the ids restarted,
        which get new ephemeral ports.  Used by the multi-fault fuzz
        phase of ``repro crashsweep`` between cases.
        """
        restarted: list[str] = []
        for sid in sorted(set(armed or [])):
            self.restart(sid)
            restarted.append(sid)
        for sid, entry in self.servers.items():
            if not entry.alive:
                self.start_server(sid)
                restarted.append(sid)
        return restarted

    def stop(self) -> None:
        for entry in self.servers.values():
            if entry.process is not None and entry.process.poll() is None:
                # a SIGSTOP'd child cannot act on SIGTERM; wake it first
                entry.process.send_signal(signal.SIGCONT)
                entry.process.terminate()
        for entry in self.servers.values():
            if entry.process is not None:
                try:
                    entry.process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    entry.process.kill()
                    entry.process.wait()
            self._close_log(entry)

    @staticmethod
    def _close_log(entry: ServerProcess) -> None:
        if entry.log_file is not None:
            entry.log_file.close()
            entry.log_file = None

    # -- addressing ---------------------------------------------------

    def addresses(self) -> dict[str, tuple[str, int]]:
        """server id → (host, port), for every *started* server.

        A killed server keeps its (now dead) address so clients observe
        a genuine connection failure rather than a missing entry.
        """
        return {sid: entry.address for sid, entry in self.servers.items()
                if entry.port}

    def cluster_spec(self, *, copies: int = 2, delta: int = 8,
                     vnodes: int | None = None, quotas=None,
                     capacities=None):
        """A :class:`~repro.rt.placement.ClusterSpec` over this roster.

        Built after :meth:`start` (the ephemeral ports must be known);
        the spec feeds a placement directory or ``write_spec`` for the
        CLI tools.
        """
        from .placement import DEFAULT_VNODES, ClusterSpec
        return ClusterSpec(
            servers=self.addresses(),
            copies=copies,
            delta=delta,
            vnodes=vnodes if vnodes is not None else DEFAULT_VNODES,
            quotas=dict(quotas or {}),
            capacities=dict(capacities or {}),
        )

    def write_spec(self, path: str | None = None, **spec_kwargs) -> str:
        """Write ``placements.json`` for this cluster; return its path.

        Defaults to ``<root_dir>/placements.json`` — the file the CLI
        tools (``repro ring/loadgen/stats --cluster-spec``) consume.
        """
        spec = self.cluster_spec(**spec_kwargs)
        if path is None:
            path = os.path.join(self.root_dir, "placements.json")
        return spec.save(path)

    def __enter__(self) -> "LoopbackCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""A fault-injecting loopback TCP proxy (network chaos layer).

Grown out of the stallable proxy in ``tests/rt/test_backpressure.py``:
interposed between a client and one daemon, :class:`ChaosProxy`
reproduces the network's misbehavior on demand so it can compose with
the storage faults of :mod:`repro.rt.faultfs` in one sweep:

* **stall** — stop forwarding in both directions while still reading
  from the peer (the observable behavior of a SIGSTOP'd server: TCP
  connects succeed, small sends land in kernel buffers, replies stop);
* **latency** — a fixed per-chunk forwarding delay;
* **loss** — drop a chunk with probability ``loss_rate``;
* **one-way partition** — drop *everything* in one direction while the
  other keeps flowing (the asymmetric gray failure keep-alive probes
  are for);
* **corruption** — flip one bit of a chunk with probability
  ``corrupt_rate``.

Loss and corruption are driven by a seeded :class:`random.Random`, so
a chaos run is replayable from its seed.  Note that on a TCP stream,
dropping or corrupting bytes desynchronizes the wire framing — the
receiver sees a malformed header or a CRC mismatch and tears the
connection down; that *is* the scenario being exercised.

:class:`ProxiedCluster` is the in-process three-daemon fixture from the
back-pressure tests, with the first daemon behind a proxy.
"""

from __future__ import annotations

import asyncio
import os
import random

from .filestore import FileLogStore
from .server import LogServerDaemon

#: Valid ``direction`` arguments to :meth:`ChaosProxy.partition`.
DIRECTIONS = ("c2s", "s2c", "both")


class ChaosProxy:
    """A loopback TCP proxy that misbehaves on command.

    The zero-argument fault knobs (``stall``, ``partition``) are
    toggled at runtime; the probabilistic ones (``latency_s``,
    ``loss_rate``, ``corrupt_rate``) are constructor parameters and are
    applied per 4096-byte chunk, deterministically from ``seed``.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 latency_s: float = 0.0, loss_rate: float = 0.0,
                 corrupt_rate: float = 0.0, seed: int = 0):
        self.upstream = (upstream_host, upstream_port)
        self.stalled = asyncio.Event()
        self.stalled.set()  # set == flowing
        self.latency_s = latency_s
        self.loss_rate = loss_rate
        self.corrupt_rate = corrupt_rate
        self.seed = seed
        self._rng = random.Random(seed)
        self._blocked: set[str] = set()
        self._server: asyncio.AbstractServer | None = None
        self.port = 0
        self.bytes_forwarded = 0
        self.chunks_dropped = 0
        self.chunks_corrupted = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]

    # -- runtime fault toggles -----------------------------------------

    def stall(self) -> None:
        """Stop forwarding in both directions (hung-server shape)."""
        self.stalled.clear()

    def unstall(self) -> None:
        self.stalled.set()

    def partition(self, direction: str = "both") -> None:
        """Silently drop all traffic flowing in ``direction``.

        Unlike :meth:`stall`, the other direction keeps flowing —
        ``"s2c"`` makes a server that hears everything but is never
        heard from, ``"c2s"`` the reverse.
        """
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        if direction == "both":
            self._blocked = {"c2s", "s2c"}
        else:
            self._blocked.add(direction)

    def heal(self) -> None:
        """Remove any partition (stall state is separate)."""
        self._blocked = set()

    # -- the pump ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream)
        except OSError:
            writer.close()
            return

        async def pump(src, dst, direction):
            try:
                while True:
                    chunk = await src.read(4096)
                    if not chunk:
                        break
                    await self.stalled.wait()
                    if direction in self._blocked:
                        self.chunks_dropped += 1
                        continue
                    if self.loss_rate and self._rng.random() < self.loss_rate:
                        self.chunks_dropped += 1
                        continue
                    if self.corrupt_rate \
                            and self._rng.random() < self.corrupt_rate:
                        pos = self._rng.randrange(len(chunk))
                        bit = 1 << self._rng.randrange(8)
                        chunk = chunk[:pos] \
                            + bytes([chunk[pos] ^ bit]) + chunk[pos + 1:]
                        self.chunks_corrupted += 1
                    if self.latency_s:
                        await asyncio.sleep(self.latency_s)
                    dst.write(chunk)
                    await dst.drain()
                    self.bytes_forwarded += len(chunk)
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            finally:
                try:
                    dst.close()
                except Exception:
                    pass

        await asyncio.gather(pump(reader, up_writer, "c2s"),
                             pump(up_reader, writer, "s2c"))

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class ProxiedCluster:
    """In-process daemons with one of them behind a :class:`ChaosProxy`.

    ``proxy_kwargs`` are forwarded to the proxy constructor, so a test
    can ask for latency/loss/corruption without rebuilding the fixture.
    """

    def __init__(self, tmp_path, *, servers: int = 3, **proxy_kwargs):
        self.tmp_path = tmp_path
        self.servers = servers
        self.proxy_kwargs = proxy_kwargs
        self.daemons: dict[str, LogServerDaemon] = {}
        self.proxy: ChaosProxy | None = None

    async def __aenter__(self):
        for i in range(self.servers):
            sid = f"s{i + 1}"
            data_dir = os.path.join(self.tmp_path, sid)
            daemon = LogServerDaemon(FileLogStore(data_dir, sid))
            await daemon.start()
            self.daemons[sid] = daemon
        first = self.daemons["s1"]
        self.proxy = ChaosProxy(first.host, first.port, **self.proxy_kwargs)
        await self.proxy.start()
        return self

    def addresses(self):
        addrs = {sid: (d.host, d.port) for sid, d in self.daemons.items()}
        addrs["s1"] = ("127.0.0.1", self.proxy.port)
        return addrs

    async def __aexit__(self, *exc):
        await self.proxy.close()
        for daemon in self.daemons.values():
            try:
                await daemon.close()
            except Exception:
                pass

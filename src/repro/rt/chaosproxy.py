"""A fault-injecting loopback TCP proxy (network chaos layer).

Grown out of the stallable proxy in ``tests/rt/test_backpressure.py``:
interposed between a client and one daemon, :class:`ChaosProxy`
reproduces the network's misbehavior on demand so it can compose with
the storage faults of :mod:`repro.rt.faultfs` and the protocol faults
of :mod:`repro.rt.clientfault` in one sweep.

Two layers of faults:

**Byte-level knobs** (the original vocabulary, applied per 4096-byte
chunk):

* **stall** — stop forwarding in both directions while still reading
  from the peer (the observable behavior of a SIGSTOP'd server: TCP
  connects succeed, small sends land in kernel buffers, replies stop);
* **latency** — a fixed per-chunk forwarding delay;
* **loss** — drop a chunk with probability ``loss_rate``;
* **one-way partition** — drop *everything* in one direction while the
  other keeps flowing (the asymmetric gray failure keep-alive probes
  are for).  :meth:`partition` and :meth:`heal` are both
  per-direction;
* **corruption** — flip one bit of a chunk with probability
  ``corrupt_rate``.

**Frame-level plans** (:class:`NetFaultPlan`): when ``plans`` or
``record`` is set, each pump direction runs an incremental
:class:`~repro.net.codec.FrameScanner`, so faults target *protocol
messages* instead of arbitrary byte windows.  A plan's crash point is
``net.<kind>.<dir>:<index>`` — the ``index``-th frame of message kind
``kind`` (a Figure 4-1 type name: ``writelog``, ``forcelog``,
``newhighlsn``, ...) crossing the proxy in direction ``dir`` (``c2s``
or ``s2c``) — and its action one of :data:`NET_ACTIONS`:

``drop``
    swallow the frame (a lost message; TCP framing stays intact);
``corrupt-payload``
    flip one bit in the frame's body — for record-bearing messages the
    receiver's CRC rejects it (header-only frames degrade to
    ``corrupt-header``);
``corrupt-header``
    flip one bit in the message magic — the receiver's decoder fails
    and tears the connection down (silent header corruption is outside
    the model: TCP checksums make an undetectably-flipped LSN a
    Byzantine fault, not a network fault);
``truncate-mid-frame``
    forward half the frame, then kill the connection (both sides);
``delay``
    hold the frame for ``net_delay_s`` before forwarding;
``duplicate``
    forward the frame twice (the at-least-once network);
``partition-after``
    forward the frame, then drop everything in its direction — on
    every connection — until :meth:`heal` (the §5.4 sweep's "old
    server alive but half-connected" shape);
``kill-connection-after``
    forward the frame, then close both sides of this connection.

Frame indices count per ``(kind, direction)`` site across the proxy's
lifetime, so the timing-dependent keep-alive ping/pong traffic never
shifts another kind's indices and a traced clean run enumerates
replayable points.  Loss and corruption are driven by a seeded
:class:`random.Random`, so a chaos run is replayable from its seed.

:class:`ProxiedCluster` is the in-process daemon fixture from the
back-pressure tests — now with *every* daemon behind its own proxy —
and :class:`ProxyFleet` fronts an existing address map (real ``repro
serve`` daemons) the same way for the network crash sweep.
"""

from __future__ import annotations

import asyncio
import os
import random
from dataclasses import dataclass, field

from ..net.codec import (
    FRAME_PREFIX_BYTES,
    MESSAGE_HEADER_BYTES,
    NAME_TYPES,
    FrameScanner,
    WireCodecError,
)
from .faultfs import FaultSpecError, _split_spec
from .filestore import FileLogStore
from .server import LogServerDaemon

#: Valid ``direction`` arguments to :meth:`ChaosProxy.partition`.
DIRECTIONS = ("c2s", "s2c", "both")

#: Frame directions a :class:`NetFaultPlan` can name (``both`` is a
#: partition-toggle convenience, not a frame direction).
FRAME_DIRECTIONS = ("c2s", "s2c")

#: Frame-level fault actions, in the grammar's vocabulary.
NET_ACTIONS = ("drop", "corrupt-payload", "corrupt-header",
               "truncate-mid-frame", "delay", "duplicate",
               "partition-after", "kill-connection-after")

#: Offset of the message body within a full frame image.
_BODY_OFFSET = FRAME_PREFIX_BYTES + MESSAGE_HEADER_BYTES


@dataclass(frozen=True)
class NetFaultPlan:
    """Arm ``action`` at the ``index``-th ``kind`` frame in ``direction``.

    The spec grammar is symmetric with the storage and client fault
    plans (``SITE:IDX:ACTION``): ``net.<kind>.<dir>:<idx>:<action>``,
    optionally prefixed ``<server>@`` to route the plan to one server's
    proxy in a :class:`ProxyFleet` (composite fuzz plans mix the three
    families in one comma-separated string).
    """

    kind: str
    direction: str
    index: int
    action: str
    server: str = ""

    def __post_init__(self) -> None:
        if self.kind not in NAME_TYPES:
            raise FaultSpecError(
                self.spec, self.kind,
                "is not a wire message kind (see net.codec.NAME_TYPES)",
            )
        if self.direction not in FRAME_DIRECTIONS:
            raise FaultSpecError(
                self.spec, self.direction,
                f"is not a frame direction (one of "
                f"{', '.join(FRAME_DIRECTIONS)})",
            )
        if self.index < 0:
            raise FaultSpecError(self.spec, str(self.index),
                                 "is a negative frame index")
        if self.action not in NET_ACTIONS:
            raise FaultSpecError(
                self.spec, self.action,
                f"is not a network fault action (one of "
                f"{', '.join(NET_ACTIONS)})",
            )

    @property
    def site(self) -> str:
        return f"net.{self.kind}.{self.direction}"

    @property
    def point(self) -> str:
        return f"{self.site}:{self.index}"

    @property
    def spec(self) -> str:
        prefix = f"{self.server}@" if self.server else ""
        return f"{prefix}{self.site}:{self.index}:{self.action}"

    @classmethod
    def parse(cls, spec: str) -> "NetFaultPlan":
        """Parse ``[server@]net.<kind>.<dir>:<idx>:<action>``.

        Malformed input raises :class:`FaultSpecError` naming the bad
        token, exactly like the storage grammar it mirrors.
        """
        server, sep, body = spec.partition("@")
        if not sep:
            server, body = "", spec
        elif not server:
            raise FaultSpecError(spec, spec,
                                 "has an empty server id before '@'")
        site, index_s, action = _split_spec(body, None)
        parts = site.split(".")
        if len(parts) != 3 or parts[0] != "net":
            raise FaultSpecError(
                spec, site,
                "is not a network fault site (net.<kind>.<dir>)",
            )
        try:
            index = int(index_s)
        except ValueError:
            raise FaultSpecError(spec, index_s,
                                 "is not an integer frame index") from None
        return cls(kind=parts[1], direction=parts[2], index=index,
                   action=action, server=server)


def parse_net_plans(spec: str) -> tuple[NetFaultPlan, ...]:
    """Parse a comma-separated multi-plan string of network faults.

    Mirrors :func:`repro.rt.faultfs.parse_fault_plans`: whitespace
    around tokens is tolerated; an empty string, empty token, duplicate
    ``(server, point)``, or malformed token raises
    :class:`FaultSpecError`.
    """
    tokens = [token.strip() for token in spec.split(",")]
    if tokens == [""]:
        raise FaultSpecError(spec, spec, "is an empty fault plan")
    plans: list[NetFaultPlan] = []
    for token in tokens:
        if not token:
            raise FaultSpecError(spec, token,
                                 "is an empty token between commas")
        plans.append(NetFaultPlan.parse(token))
    points = [(plan.server, plan.point) for plan in plans]
    for key in points:
        if points.count(key) > 1:
            raise FaultSpecError(spec, f"{key[0]}@{key[1]}" if key[0]
                                 else key[1], "is armed twice in one plan")
    return tuple(plans)


class ChaosProxy:
    """A loopback TCP proxy that misbehaves on command.

    The zero-argument fault knobs (``stall``, ``partition``) are
    toggled at runtime; the probabilistic ones (``latency_s``,
    ``loss_rate``, ``corrupt_rate``) are constructor parameters and are
    applied per 4096-byte chunk, deterministically from ``seed``.
    Frame-level behavior (``plans``, ``record``) is documented in the
    module docstring.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 latency_s: float = 0.0, loss_rate: float = 0.0,
                 corrupt_rate: float = 0.0, seed: int = 0,
                 plans: tuple[NetFaultPlan, ...] = (),
                 record: bool = False, net_delay_s: float = 0.25):
        self.upstream = (upstream_host, upstream_port)
        self.stalled = asyncio.Event()
        self.stalled.set()  # set == flowing
        self.latency_s = latency_s
        self.loss_rate = loss_rate
        self.corrupt_rate = corrupt_rate
        self.seed = seed
        self.plans = tuple(plans)
        self.record = record
        self.net_delay_s = net_delay_s
        self._frame_aware = bool(self.plans) or record
        self._rng = random.Random(seed)
        self._blocked: set[str] = set()
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.port = 0
        #: frame site → invocations seen (proxy-global, so indices are
        #: stable across the reconnects a killed connection causes).
        self._site_counts: dict[str, int] = {}
        #: every frame point seen, in order (``record`` mode).
        self.trace: list[str] = []
        #: first armed point that fired, as ``point:action``.
        self.tripped: str | None = None
        self.faults_injected = 0
        self.bytes_forwarded = 0
        self.chunks_dropped = 0
        self.chunks_corrupted = 0
        #: per-direction drop counters (chunks and frames both count).
        self.dropped_by_direction: dict[str, int] = {"c2s": 0, "s2c": 0}
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.frames_truncated = 0
        self.frames_delayed = 0
        self.connections_killed = 0
        #: pump directions that hit a scan error and fell back to raw
        #: passthrough (corruption desynchronized the framing).
        self.scan_errors = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]

    # -- runtime fault toggles -----------------------------------------

    def stall(self) -> None:
        """Stop forwarding in both directions (hung-server shape)."""
        self.stalled.clear()

    def unstall(self) -> None:
        self.stalled.set()

    def partition(self, direction: str = "both") -> None:
        """Silently drop all traffic flowing in ``direction``.

        Unlike :meth:`stall`, the other direction keeps flowing —
        ``"s2c"`` makes a server that hears everything but is never
        heard from, ``"c2s"`` the reverse.
        """
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        if direction == "both":
            self._blocked |= {"c2s", "s2c"}
        else:
            self._blocked.add(direction)

    def heal(self, direction: str = "both") -> None:
        """Lift the partition in ``direction`` only (default: all).

        Symmetric with :meth:`partition`: healing ``"c2s"`` after a
        ``"both"`` block leaves the ``s2c`` half in place, so
        asymmetric fault schedules compose without silently clearing
        each other.  Stall state is separate.
        """
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        if direction == "both":
            self._blocked.clear()
        else:
            self._blocked.discard(direction)

    # -- the pump ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream)
        except OSError:
            writer.close()
            return
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        writers = (up_writer, writer)

        def close_both() -> None:
            for w in writers:
                try:
                    w.close()
                except Exception:
                    pass

        try:
            await asyncio.gather(
                self._pump(reader, up_writer, "c2s", close_both),
                self._pump(up_reader, writer, "s2c", close_both),
            )
        except asyncio.CancelledError:
            pass  # close() tearing the connection down
        finally:
            close_both()
            if task is not None:
                self._conn_tasks.discard(task)

    async def _pump(self, src, dst, direction, close_both) -> None:
        scanner = FrameScanner() if self._frame_aware else None
        raw = scanner is None
        try:
            while True:
                chunk = await src.read(4096)
                if not chunk:
                    break
                await self.stalled.wait()
                if direction in self._blocked:
                    self.chunks_dropped += 1
                    self.dropped_by_direction[direction] += 1
                    continue
                if self.loss_rate and self._rng.random() < self.loss_rate:
                    self.chunks_dropped += 1
                    self.dropped_by_direction[direction] += 1
                    continue
                if self.corrupt_rate \
                        and self._rng.random() < self.corrupt_rate:
                    pos = self._rng.randrange(len(chunk))
                    bit = 1 << self._rng.randrange(8)
                    chunk = chunk[:pos] \
                        + bytes([chunk[pos] ^ bit]) + chunk[pos + 1:]
                    self.chunks_corrupted += 1
                if self.latency_s:
                    await asyncio.sleep(self.latency_s)
                if not raw:
                    try:
                        frames = scanner.feed(chunk)
                    except WireCodecError:
                        # Desynchronized (e.g. chunk-level corruption):
                        # forward what is buffered verbatim and let the
                        # endpoint's decoder reject it.
                        self.scan_errors += 1
                        raw = True
                        chunk = scanner.take_buffer()
                    else:
                        for frame in frames:
                            if not await self._forward_frame(
                                    frame, dst, direction, close_both):
                                return
                        continue
                dst.write(chunk)
                await dst.drain()
                self.bytes_forwarded += len(chunk)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                dst.close()
            except Exception:
                pass

    def _plan_for(self, site: str, index: int) -> NetFaultPlan | None:
        for plan in self.plans:
            if plan.site == site and plan.index == index:
                return plan
        return None

    def _flip_bit(self, data: bytes, lo: int, hi: int) -> bytes:
        pos = lo + self._rng.randrange(hi - lo)
        bit = 1 << self._rng.randrange(8)
        return data[:pos] + bytes([data[pos] ^ bit]) + data[pos + 1:]

    async def _forward_frame(self, frame, dst, direction,
                             close_both) -> bool:
        """Apply any armed plan to one frame; False ends the pump."""
        site = f"net.{frame.kind}.{direction}"
        index = self._site_counts.get(site, 0)
        self._site_counts[site] = index + 1
        if self.record:
            self.trace.append(f"{site}:{index}")
        # Re-check the partition per frame: a ``partition-after`` armed
        # earlier in this same chunk must swallow the rest of it too.
        if direction in self._blocked:
            self.frames_dropped += 1
            self.dropped_by_direction[direction] += 1
            return True
        plan = self._plan_for(site, index)
        data = frame.data
        partition_after = False
        if plan is not None:
            self.faults_injected += 1
            if self.tripped is None:
                self.tripped = f"{plan.point}:{plan.action}"
            action = plan.action
            if action == "drop":
                self.frames_dropped += 1
                self.dropped_by_direction[direction] += 1
                return True
            if action == "delay":
                self.frames_delayed += 1
                await asyncio.sleep(self.net_delay_s)
            elif action == "corrupt-payload":
                # Header-only frames have no body; degrade to the
                # header flip (which the magic check always catches).
                if len(data) > _BODY_OFFSET:
                    data = self._flip_bit(data, _BODY_OFFSET, len(data))
                else:
                    data = self._flip_bit(data, FRAME_PREFIX_BYTES,
                                          FRAME_PREFIX_BYTES + 2)
                self.frames_corrupted += 1
            elif action == "corrupt-header":
                # Flip within the magic: deterministically detectable.
                # An undetectable header flip (say, in the LSN field)
                # would be Byzantine, outside the crash-failure model.
                data = self._flip_bit(data, FRAME_PREFIX_BYTES,
                                      FRAME_PREFIX_BYTES + 2)
                self.frames_corrupted += 1
            elif action == "truncate-mid-frame":
                cut = max(FRAME_PREFIX_BYTES + 1, len(data) // 2)
                self.frames_truncated += 1
                self.connections_killed += 1
                try:
                    dst.write(data[:cut])
                    await dst.drain()
                except (ConnectionError, OSError):
                    pass
                close_both()
                return False
            elif action == "duplicate":
                self.frames_duplicated += 1
                dst.write(data)  # first copy; second falls through
            elif action == "partition-after":
                partition_after = True
            elif action == "kill-connection-after":
                self.connections_killed += 1
                try:
                    dst.write(data)
                    await dst.drain()
                except (ConnectionError, OSError):
                    pass
                close_both()
                return False
        dst.write(data)
        await dst.drain()
        self.bytes_forwarded += len(data)
        self.frames_forwarded += 1
        if partition_after:
            self.partition(direction)
        return True

    async def close(self) -> None:
        """Stop listening and tear down every in-flight connection.

        Pump tasks are cancelled and both sides of each proxied
        connection closed, so a stalled or partitioned connection
        cannot outlive the proxy.
        """
        if self._server is not None:
            self._server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None


class ProxiedCluster:
    """In-process daemons, each behind its own :class:`ChaosProxy`.

    ``proxy_kwargs`` are forwarded to the *faulty* server's proxy
    constructor (``faulty``, default ``"s1"``), so a test can ask for
    latency/loss/corruption/frame plans on one server without
    rebuilding the fixture; the other servers get clean proxies.
    ``proxy`` aliases the faulty server's proxy; ``proxies`` maps every
    server id to its own.
    """

    def __init__(self, tmp_path, *, servers: int = 3, faulty: str = "s1",
                 **proxy_kwargs):
        self.tmp_path = tmp_path
        self.servers = servers
        self.faulty = faulty
        self.proxy_kwargs = proxy_kwargs
        self.daemons: dict[str, LogServerDaemon] = {}
        self.proxies: dict[str, ChaosProxy] = {}
        self.proxy: ChaosProxy | None = None

    async def __aenter__(self):
        for i in range(self.servers):
            sid = f"s{i + 1}"
            data_dir = os.path.join(self.tmp_path, sid)
            daemon = LogServerDaemon(FileLogStore(data_dir, sid))
            await daemon.start()
            self.daemons[sid] = daemon
            kwargs = self.proxy_kwargs if sid == self.faulty else {}
            proxy = ChaosProxy(daemon.host, daemon.port, **kwargs)
            await proxy.start()
            self.proxies[sid] = proxy
        self.proxy = self.proxies[self.faulty]
        return self

    def addresses(self):
        return {sid: ("127.0.0.1", proxy.port)
                for sid, proxy in self.proxies.items()}

    def direct_addresses(self):
        """The daemons' own addresses, bypassing every proxy."""
        return {sid: (d.host, d.port) for sid, d in self.daemons.items()}

    async def __aexit__(self, *exc):
        for proxy in self.proxies.values():
            await proxy.close()
        for daemon in self.daemons.values():
            try:
                await daemon.close()
            except Exception:
                pass


class ProxyFleet:
    """One :class:`ChaosProxy` in front of every server of an address map.

    The network crash sweep fronts a real
    :class:`~repro.rt.cluster.LoopbackCluster` with one of these per
    case: each :class:`NetFaultPlan` is routed to the proxy of its
    ``server`` field (``default_target`` when unset), ``record_server``
    names the proxy that traces frame points for enumeration, and the
    client under test is pointed at :meth:`addresses`.
    """

    def __init__(self, addresses, *, plans: tuple[NetFaultPlan, ...] = (),
                 record_server: str | None = None,
                 default_target: str = "s1", seed: int = 0,
                 net_delay_s: float = 0.25):
        self._upstream = dict(addresses)
        self._seed = seed
        self._net_delay_s = net_delay_s
        self.record_server = record_server
        by_server: dict[str, list[NetFaultPlan]] = {}
        for plan in plans:
            by_server.setdefault(plan.server or default_target,
                                 []).append(plan)
        for sid in by_server:
            if sid not in self._upstream:
                raise FaultSpecError(
                    ",".join(p.spec for p in plans), sid,
                    "names a server that is not in the cluster",
                )
        self._plans = by_server
        self.proxies: dict[str, ChaosProxy] = {}

    async def start(self) -> None:
        for sid, (host, port) in sorted(self._upstream.items()):
            proxy = ChaosProxy(
                host, port,
                plans=tuple(self._plans.get(sid, ())),
                record=(sid == self.record_server),
                seed=self._seed, net_delay_s=self._net_delay_s,
            )
            await proxy.start()
            self.proxies[sid] = proxy

    def addresses(self) -> dict[str, tuple[str, int]]:
        return {sid: ("127.0.0.1", proxy.port)
                for sid, proxy in self.proxies.items()}

    def heal(self) -> None:
        for proxy in self.proxies.values():
            proxy.heal()

    @property
    def tripped(self) -> str | None:
        for sid in sorted(self.proxies):
            if self.proxies[sid].tripped is not None:
                return self.proxies[sid].tripped
        return None

    @property
    def faults_injected(self) -> int:
        return sum(p.faults_injected for p in self.proxies.values())

    async def close(self) -> None:
        for proxy in self.proxies.values():
            await proxy.close()

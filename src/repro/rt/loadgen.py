"""ET1-shaped load against a real cluster (the ``repro loadgen`` core).

Drives :class:`~repro.rt.client.AsyncReplicatedLog` with the Section
4.1 logging profile — seven 100-byte records per transaction, six
buffered WriteLogs and one forced commit — in a closed loop, and
reports throughput plus ForceLog latency percentiles.  The same
numbers the simulator's capacity experiments estimate, measured on
real sockets and real fsyncs (see EXPERIMENTS.md E12 for why loopback
figures are not the paper's 10 Mbit/s LAN figures).

:func:`run_multi_loadgen` runs ``K`` independent closed-loop clients
concurrently on one event loop (``repro loadgen --clients K``) and
aggregates their reports; ``truncate_every`` issues a Section 5.3
TruncateLog round every N transactions, keeping each server's log
bounded during long runs.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Mapping, Union

from ..core.config import ReplicationConfig
from ..core.errors import TenantQuotaExceeded
from ..workload.et1 import Et1Params, et1_log_pattern
from .client import AsyncReplicatedLog
from .placement import (
    PlacementDirectory,
    derive_client_seed,
    loadgen_client_ids,
)

#: Either an explicit roster or a placement directory; the directory
#: carries its own (M, N, δ) so ``config`` may then be None.
ServerSource = Union[Mapping[str, tuple[str, int]], PlacementDirectory]


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclass
class LoadReport:
    """What one load-generation run observed."""

    transactions: int = 0
    records_written: int = 0
    bytes_written: int = 0
    duration_s: float = 0.0
    force_latencies_s: list[float] = field(default_factory=list)
    server_switches: int = 0
    final_epoch: int = 0
    final_high_lsn: int = 0
    client_id: str = ""
    truncations: int = 0
    records_truncated: int = 0
    quota_throttles: int = 0

    @property
    def records_per_sec(self) -> float:
        return self.records_written / self.duration_s if self.duration_s else 0.0

    @property
    def txns_per_sec(self) -> float:
        return self.transactions / self.duration_s if self.duration_s else 0.0

    @property
    def force_p50_ms(self) -> float:
        return 1e3 * percentile(sorted(self.force_latencies_s), 0.50)

    @property
    def force_p99_ms(self) -> float:
        return 1e3 * percentile(sorted(self.force_latencies_s), 0.99)

    def as_dict(self) -> dict:
        return {
            "transactions": self.transactions,
            "records_written": self.records_written,
            "bytes_written": self.bytes_written,
            "duration_s": round(self.duration_s, 6),
            "records_per_sec": round(self.records_per_sec, 3),
            "txns_per_sec": round(self.txns_per_sec, 3),
            "force_p50_ms": round(self.force_p50_ms, 3),
            "force_p99_ms": round(self.force_p99_ms, 3),
            "server_switches": self.server_switches,
            "final_epoch": self.final_epoch,
            "final_high_lsn": self.final_high_lsn,
            "truncations": self.truncations,
            "records_truncated": self.records_truncated,
            "quota_throttles": self.quota_throttles,
        }


async def run_loadgen(
    servers: ServerSource,
    config: ReplicationConfig | None = None,
    *,
    client_id: str = "loadgen",
    duration_s: float = 5.0,
    max_txns: int | None = None,
    params: Et1Params | None = None,
    log: AsyncReplicatedLog | None = None,
    truncate_every: int = 0,
    rng_seed: int | None = None,
) -> LoadReport:
    """Closed-loop ET1 transactions until ``duration_s`` elapses.

    ``max_txns`` caps the run for tests; a pre-initialized ``log`` may
    be supplied (and is then left open for further use), otherwise one
    is created, initialized, and closed here.  ``truncate_every`` > 0
    issues a Section 5.3 TruncateLog round every that many committed
    transactions, keeping the low-water mark ``δ`` records behind the
    durable high so the working set — client map, server memory, and
    on-disk log — stays bounded for arbitrarily long runs.

    ``rng_seed`` seeds the client's retry-jitter RNG, making a K-client
    sweep reproducible end to end; a quota-throttled commit
    (:class:`TenantQuotaExceeded` surviving the force retry schedule)
    is tolerated — the records stay in the unacknowledged window, the
    generator sleeps one beat, and the next commit force re-sends them.
    """
    params = params if params is not None else Et1Params()
    own_log = log is None
    if log is None:
        rng = random.Random(rng_seed) if rng_seed is not None else None
        log = AsyncReplicatedLog(client_id, servers, config, rng=rng)
        await log.initialize()
    report = LoadReport(client_id=log.client_id)
    delta = log.config.delta
    start = time.monotonic()
    seq = 0
    try:
        while True:
            now = time.monotonic()
            if now - start >= duration_s:
                break
            if max_txns is not None and report.transactions >= max_txns:
                break
            try:
                for data, kind, forced in et1_log_pattern(params, seq):
                    await log.write(data, kind=kind)
                    report.records_written += 1
                    report.bytes_written += len(data)
                    if forced:
                        t0 = time.monotonic()
                        await log.force()
                        report.force_latencies_s.append(
                            time.monotonic() - t0)
            except TenantQuotaExceeded:
                # Admission back-pressure outlived the retry schedule;
                # the transaction is not counted, its records ride the
                # window into the next commit force.
                await asyncio.sleep(0.05)
                continue
            report.transactions += 1
            seq += 1
            if truncate_every and report.transactions % truncate_every == 0:
                low_water = log.end_of_log() - delta
                if low_water > 1:
                    report.records_truncated += await log.truncate(low_water)
                    report.truncations += 1
        report.duration_s = time.monotonic() - start
        report.server_switches = log.server_switches
        report.final_epoch = log.current_epoch
        report.final_high_lsn = log.end_of_log()
        report.quota_throttles = log.quota_throttles
    finally:
        if own_log:
            await log.close()
    return report


@dataclass
class MultiLoadReport:
    """Aggregate view over ``K`` concurrent closed-loop clients."""

    per_client: list[LoadReport] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def transactions(self) -> int:
        return sum(r.transactions for r in self.per_client)

    @property
    def records_written(self) -> int:
        return sum(r.records_written for r in self.per_client)

    @property
    def txns_per_sec(self) -> float:
        return self.transactions / self.duration_s if self.duration_s else 0.0

    @property
    def records_per_sec(self) -> float:
        return self.records_written / self.duration_s if self.duration_s else 0.0

    @property
    def force_p50_ms(self) -> float:
        merged = sorted(
            lat for r in self.per_client for lat in r.force_latencies_s
        )
        return 1e3 * percentile(merged, 0.50)

    @property
    def force_p99_ms(self) -> float:
        merged = sorted(
            lat for r in self.per_client for lat in r.force_latencies_s
        )
        return 1e3 * percentile(merged, 0.99)

    def as_dict(self) -> dict:
        return {
            "clients": len(self.per_client),
            "duration_s": round(self.duration_s, 6),
            "transactions": self.transactions,
            "records_written": self.records_written,
            "txns_per_sec": round(self.txns_per_sec, 3),
            "records_per_sec": round(self.records_per_sec, 3),
            "force_p50_ms": round(self.force_p50_ms, 3),
            "force_p99_ms": round(self.force_p99_ms, 3),
            "quota_throttles": sum(r.quota_throttles
                                   for r in self.per_client),
            "per_client": [r.as_dict() | {"client_id": r.client_id}
                           for r in self.per_client],
        }


async def run_multi_loadgen(
    servers: ServerSource,
    config: ReplicationConfig | None = None,
    *,
    clients: int = 2,
    client_id: str = "lg",
    tenants: int = 0,
    base_seed: int | None = None,
    **kwargs,
) -> MultiLoadReport:
    """``clients`` concurrent closed-loop ET1 clients on one event loop.

    Each client is its own :class:`AsyncReplicatedLog` (the paper's
    log is single-client by design — scaling comes from running many
    logs against the shared servers, Section 2's "few hundred clients"
    regime).  Per-client ids come from
    :func:`~repro.rt.placement.loadgen_client_ids` — plain
    ``<client_id>-<i>`` streams, or ``t<j>/<client_id>-<i>`` tenant
    streams when ``tenants`` > 0 — so the placement ring and the quota
    tables see the same names the CLI prints.  ``base_seed`` derives a
    distinct deterministic RNG seed per client index, making the whole
    sweep reproducible.
    """
    report = MultiLoadReport()
    ids = loadgen_client_ids(clients, tenants=tenants, prefix=client_id)
    start = time.monotonic()
    results = await asyncio.gather(*(
        run_loadgen(servers, config, client_id=cid,
                    rng_seed=(derive_client_seed(base_seed, i)
                              if base_seed is not None else None),
                    **kwargs)
        for i, cid in enumerate(ids)
    ))
    report.per_client = list(results)
    report.duration_s = time.monotonic() - start
    return report


def run_loadgen_sync(
    servers: ServerSource,
    config: ReplicationConfig | None = None,
    **kwargs,
) -> LoadReport:
    """Blocking wrapper for the CLI and benchmarks."""
    return asyncio.run(run_loadgen(servers, config, **kwargs))


def run_multi_loadgen_sync(
    servers: ServerSource,
    config: ReplicationConfig | None = None,
    **kwargs,
) -> MultiLoadReport:
    """Blocking wrapper for ``repro loadgen --clients K``."""
    return asyncio.run(run_multi_loadgen(servers, config, **kwargs))

"""The asyncio replicated-log client (N-of-M over real TCP).

Implements the client side of Section 3.1.2 and the grouped interface
of Section 4.2 against :class:`~repro.rt.server.LogServerDaemon`
processes, reusing the core logic unchanged: interval merging
(:class:`~repro.core.intervals.MergedIntervalMap`), the ``(M, N, δ)``
configuration, the Appendix I quorum rule for epoch numbers, and the
:class:`~repro.core.retry.RetryPolicy` backoff schedule (slept on
``asyncio.sleep``).

Write path (grouped/streamed):

* :meth:`AsyncReplicatedLog.write` buffers records and streams a
  WriteLog batch to the ``N`` write-set servers when a network
  packet's worth has accumulated — no acknowledgment;
* :meth:`AsyncReplicatedLog.force` sends the entire unacknowledged
  window as one ForceLog and awaits a NewHighLSN ack from every
  write-set server; a window is bounded by ``δ`` ("the client must
  limit the number of records contained in unacknowledged WriteLog and
  ForceLog messages"), so a force is triggered implicitly when the
  window fills;
* a write-set server that dies is replaced mid-stream: the client
  picks a spare, announces the fresh interval with NewInterval, and
  re-sends the unacknowledged window there ("a client can switch
  servers when necessary") — duplicate retransmissions to surviving
  servers are tolerated by the store.

Restart (:meth:`AsyncReplicatedLog.initialize`) gathers interval lists
from at least ``M − N + 1`` servers, merges them, draws a fresh epoch
from the replicated generator (majority read + majority write over the
same connections), copies the last ``δ`` records under the new epoch,
appends ``δ`` not-present guards, and installs atomically — the exact
procedure of :mod:`repro.core.recovery`, spoken over the wire.

Degraded servers (slow, hung, disk-full) are handled without blocking
the batch path: every connection owns a bounded send queue drained by
a writer task, consecutive queue-full flushes strike a slow server out
of the write set (the same Section 5.4 switch a crash triggers),
keep-alive pings demote a hung server in about two probe intervals and
quarantine it against instant re-adoption, and
:meth:`AsyncReplicatedLog.truncate` announces a Section 5.3 truncation
point ("records below it will never be read again") to every server so
they can reclaim log space.
"""

from __future__ import annotations

import asyncio
import random
from typing import Awaitable, Callable, Mapping

from ..core.config import ReplicationConfig
from ..core.errors import (
    LogFenced,
    LSNNotWritten,
    NotEnoughServers,
    NotInitialized,
    RecordNotPresent,
    ServerUnavailable,
    StaleEpoch,
    TenantQuotaExceeded,
)
from ..core.epoch import read_quorum_size, write_quorum_size
from ..core.intervals import MergedIntervalMap, ServerIntervals
from ..core.records import (
    Epoch,
    LogRecord,
    LSN,
    StoredRecord,
    trusted_stored_record,
)
from ..core.retry import RetryPolicy
from ..net.codec import FrameReader, encode_stored_record, frame, frame_iov
from ..net.messages import (
    ERR_FENCED,
    ERR_QUOTA,
    CopyLogCall,
    ErrorReply,
    FenceLogCall,
    FenceReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    Message,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    PingMsg,
    PongMsg,
    ReadLogForwardCall,
    ReadLogReply,
    TruncateLogCall,
    TruncateReply,
    WriteLogMsg,
)
from ..net.packet import PACKET_PAYLOAD_BYTES
from . import clientfault
from .placement import PlacementDirectory


def _reply_error(server_id: str, reply: ErrorReply) -> Exception:
    """The exception a typed ErrorReply maps to.

    ``ERR_QUOTA`` is a fleet-wide admission condition — back off, do
    not switch servers; ``ERR_FENCED`` means the stream's ownership
    was taken over at a higher epoch — *terminal* for this writer, so
    it must surface as :class:`LogFenced` (never
    :class:`ServerUnavailable`, which would burn spares retrying an
    operation no server will ever accept again); everything else stays
    the per-server failure the core algorithm routes around.
    """
    if reply.code == ERR_QUOTA:
        return TenantQuotaExceeded(server_id, reply.reason)
    if reply.code == ERR_FENCED:
        return LogFenced(server_id,
                         reason=f"log server {server_id!r}: {reply.reason}")
    return ServerUnavailable(server_id, reply.reason)


class ServerConnection:
    """One TCP connection to one log server, with reply routing.

    The stream interleaves three traffic classes: in-order replies to
    synchronous calls, NewHighLSN force acknowledgments, and
    unsolicited MissingInterval negative acknowledgments.  A reader
    task dispatches each: acks resolve every force waiter at or below
    the acknowledged LSN, MissingInterval goes to ``on_missing``, and
    everything else answers the oldest pending call (TCP preserves
    request order, and the daemon replies inline).

    Outbound frames go through a **bounded send queue** drained by a
    writer task, so a peer whose TCP buffer has filled blocks only its
    own writer task — never the caller.  :meth:`try_send` reports a
    full queue instead of waiting, which is the signal the client's
    slow-server policy counts.  When ``keepalive_interval`` is set, a
    probe task pings the server every interval; ``keepalive_misses``
    consecutive silent intervals (no bytes received at all) abort the
    connection and quarantine it briefly so a hung (e.g. SIGSTOP'd)
    process is not immediately re-adopted by reconnect.
    """

    def __init__(
        self,
        server_id: str,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        on_missing: Callable[[str, MissingIntervalMsg], None] | None = None,
        client_id: str = "-",
        send_queue_limit: int = 64,
        keepalive_interval: float = 0.0,
        keepalive_misses: int = 2,
    ):
        self.server_id = server_id
        self.host = host
        self.port = port
        self.timeout = timeout
        self.on_missing = on_missing
        self.client_id = client_id
        self.send_queue_limit = send_queue_limit
        self.keepalive_interval = keepalive_interval
        self.keepalive_misses = keepalive_misses
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._writer_task: asyncio.Task | None = None
        self._keepalive_task: asyncio.Task | None = None
        #: queue entries are one frame each: either a single ``bytes``
        #: or an iovec (``list[bytes]``) produced by ``frame_iov``.
        self._sendq: asyncio.Queue[bytes | list[bytes]] | None = None
        self._pending: list[asyncio.Future] = []
        self._force_waiters: list[tuple[LSN, asyncio.Future]] = []
        self._last_rx: float = 0.0
        self.alive = False
        #: monotonic deadline before which reconnects are refused; set
        #: when keep-alive declares the peer hung.
        self.quarantined_until: float = 0.0
        self.queue_full_events = 0
        self.pings_sent = 0
        self.keepalive_aborts = 0
        #: buffers handed to the transport (writelines iovec entries).
        self.send_iovecs = 0
        #: writelines+drain cycles — each covers every frame that was
        #: queued when the writer task woke up.
        self.send_batches = 0

    async def connect(self) -> None:
        loop = asyncio.get_running_loop()
        if loop.time() < self.quarantined_until:
            raise ServerUnavailable(self.server_id,
                                    "quarantined after keep-alive failure")
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerUnavailable(self.server_id, str(exc)) from exc
        # A fresh connection must never inherit reply-routing state:
        # a future left over from the dead connection would be answered
        # by the new stream's *first* reply, shifting every positional
        # match after it by one (crash point client.force.ack:0).
        stale = ServerUnavailable(self.server_id,
                                  "connection replaced before reply")
        for fut in self._pending:
            if not fut.done():
                fut.set_exception(stale)
        for _, fut in self._force_waiters:
            if not fut.done():
                fut.set_exception(stale)
        self._pending = []
        self._force_waiters = []
        self.alive = True
        self._last_rx = loop.time()
        self._sendq = asyncio.Queue(maxsize=self.send_queue_limit)
        self._reader_task = asyncio.create_task(self._read_loop())
        self._writer_task = asyncio.create_task(self._write_loop())
        if self.keepalive_interval > 0:
            self._keepalive_task = asyncio.create_task(self._keepalive_loop())

    # -- background tasks ---------------------------------------------

    async def _read_loop(self) -> None:
        loop = asyncio.get_running_loop()
        frames = FrameReader(self._reader)
        try:
            while True:
                msg = await frames.read_message()
                if msg is None:
                    break
                self._last_rx = loop.time()
                if isinstance(msg, NewHighLSNMsg):
                    self._ack_forces(msg.new_high_lsn)
                elif isinstance(msg, MissingIntervalMsg):
                    if self.on_missing is not None:
                        self.on_missing(self.server_id, msg)
                elif isinstance(msg, PongMsg):
                    pass  # receipt alone refreshed the liveness clock
                else:
                    if self._pending:
                        self._pending.pop(0).set_result(msg)
                    elif (isinstance(msg, ErrorReply)
                          and self._force_waiters):
                        # A force refused before durability (tenant
                        # quota, wedged storage, failed group fsync):
                        # fail the oldest waiter now instead of letting
                        # it burn the full ack timeout.
                        _, fut = self._force_waiters.pop(0)
                        if not fut.done():
                            fut.set_exception(
                                _reply_error(self.server_id, msg))
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        finally:
            frames.close()
            self._abort("connection lost")

    async def _write_loop(self) -> None:
        """Drain the send queue onto the socket in coalesced batches.

        Each wakeup collects *every* queued frame, hands the flattened
        iovec to one ``writelines`` call, and drains once — so back-to-
        back WriteLog batches cost one syscall and one scheduling round
        trip instead of one each.  ``drain()`` only actually parks when
        the transport is above its high-water mark; when the peer stops
        reading, back-pressure stops at this task and the bounded
        queue, and the keep-alive probe (or a call timeout) decides
        when the connection is declared dead.
        """
        try:
            while True:
                item = await self._sendq.get()
                bufs = [item] if isinstance(item, bytes) else list(item)
                while True:
                    try:
                        item = self._sendq.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if isinstance(item, bytes):
                        bufs.append(item)
                    else:
                        bufs.extend(item)
                self._writer.writelines(bufs)
                self.send_iovecs += len(bufs)
                self.send_batches += 1
                await self._writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._abort(f"send failed: {exc}")

    async def _keepalive_loop(self) -> None:
        """Ping an idle connection; declare it hung after enough misses.

        Any inbound traffic counts as life.  A hung server accepts the
        ping into its socket buffer but never answers, so after
        ``keepalive_misses`` silent probe intervals (~2 by default) the
        connection is aborted and quarantined — failing every pending
        future now rather than letting callers wait out full timeouts.
        """
        loop = asyncio.get_running_loop()
        misses = 0
        token = 0
        last_probe = loop.time()
        while True:
            await asyncio.sleep(self.keepalive_interval)
            if not self.alive:
                return
            # A miss is "nothing received since the previous probe" —
            # not "idle longer than the interval", which would race
            # against the pong arriving a hair after each probe.
            if self._last_rx >= last_probe:
                misses = 0
            else:
                misses += 1
                if misses > self.keepalive_misses:
                    self.keepalive_aborts += 1
                    self._abort(
                        "keep-alive: no response in "
                        f"{misses} probe intervals",
                        quarantine=self.keepalive_interval
                        * (self.keepalive_misses + 1),
                    )
                    return
            last_probe = loop.time()
            token += 1
            self.pings_sent += 1
            self._enqueue_nowait(frame(PingMsg(self.client_id, token=token)))

    # -- bookkeeping ---------------------------------------------------

    def _ack_forces(self, acked: LSN) -> None:
        remaining = []
        for high, fut in self._force_waiters:
            if high <= acked:
                if not fut.done():
                    fut.set_result(acked)
            else:
                remaining.append((high, fut))
        self._force_waiters = remaining

    def _abort(self, reason: str, *, quarantine: float = 0.0) -> None:
        """Declare the connection dead: fail futures, cancel tasks.

        Safe to call from within any of the connection's own tasks (a
        task never cancels itself) and idempotent.  This is the single
        teardown path, so a timed-out call can no longer leave a reader
        task running against a list of already-failed futures.
        """
        was_alive = self.alive
        self.alive = False
        if quarantine > 0:
            self.quarantined_until = (
                asyncio.get_running_loop().time() + quarantine
            )
        exc = ServerUnavailable(self.server_id, reason)
        for fut in self._pending:
            if not fut.done():
                fut.set_exception(exc)
        for _, fut in self._force_waiters:
            if not fut.done():
                fut.set_exception(exc)
        self._pending = []
        self._force_waiters = []
        if not was_alive:
            return
        current = asyncio.current_task()
        for task in (self._reader_task, self._writer_task,
                     self._keepalive_task):
            if task is not None and task is not current:
                task.cancel()
        if self._writer is not None:
            self._writer.close()

    # -- sending -------------------------------------------------------

    def _require_alive(self) -> None:
        if not self.alive or self._sendq is None:
            raise ServerUnavailable(self.server_id, "not connected")

    def _enqueue_nowait(self, buf: bytes | list[bytes]) -> bool:
        try:
            self._sendq.put_nowait(buf)
        except asyncio.QueueFull:
            self.queue_full_events += 1
            return False
        return True

    def queued_frames(self) -> int:
        """Frames waiting in the send queue (the load signal adaptive
        δ reads: a non-empty queue at force time means the writer task
        is behind the workload)."""
        return self._sendq.qsize() if self._sendq is not None else 0

    def try_send(self, msg: Message,
                 bufs: list[bytes] | None = None) -> bool:
        """Enqueue an asynchronous message without ever waiting.

        Returns ``False`` when the send queue is full — the slow-server
        signal; raises :class:`ServerUnavailable` when the connection
        is dead.  Used for WriteLog streaming, where skipping a batch
        is safe because the next force re-sends the whole window.
        ``bufs`` may carry the frame pre-encoded as an iovec
        (:func:`repro.net.codec.frame_iov`), shared unchanged across
        every connection sending the same frame.
        """
        self._require_alive()
        return self._enqueue_nowait(bufs if bufs is not None else frame(msg))

    async def send(self, msg: Message,
                   bufs: list[bytes] | None = None) -> None:
        """Enqueue a message, waiting (bounded) for queue space."""
        self._require_alive()
        payload = bufs if bufs is not None else frame(msg)
        try:
            # Fast path: space available, no waiter machinery at all.
            self._sendq.put_nowait(payload)
            return
        except asyncio.QueueFull:
            pass
        try:
            await asyncio.wait_for(self._sendq.put(payload),
                                   self.timeout)
        except asyncio.TimeoutError as exc:
            self._abort("send queue stalled")
            raise ServerUnavailable(self.server_id,
                                    "send queue stalled") from exc

    async def call(self, msg: Message) -> Message:
        """Send a synchronous call; await its reply in order.

        An :class:`ErrorReply` surfaces as :class:`ServerUnavailable`
        — the per-server failure the core algorithm already knows how
        to route around.  A timeout tears the connection down (reply
        matching is positional, so a late reply must never be allowed
        to answer the wrong call).
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        await self.send(msg)
        # Registered only after the send was accepted: a send that
        # raises (dead connection, stalled queue) must not leave a
        # stale future in the positional routing list, where it would
        # swallow the first reply after a reconnect.  No await between
        # the enqueue returning and this append, so the reply cannot
        # arrive first.
        self._pending.append(fut)
        try:
            reply = await asyncio.wait_for(fut, self.timeout)
        except asyncio.TimeoutError as exc:
            self._abort("call timed out")
            raise ServerUnavailable(self.server_id, "call timed out") from exc
        if isinstance(reply, ErrorReply):
            raise _reply_error(self.server_id, reply)
        return reply

    async def force(self, msg: ForceLogMsg,
                    bufs: list[bytes] | None = None) -> LSN:
        """Send a ForceLog and await its NewHighLSN acknowledgment.

        The timeout is a plain ``call_later`` handle — cancelled on the
        (overwhelmingly common) timely ack — instead of an
        ``asyncio.wait_for``, which would create and then tear down a
        whole task per force.  A fired timeout aborts the connection,
        which fails this future with :class:`ServerUnavailable` exactly
        like the old path.
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        await self.send(msg, bufs)
        # After the send for the same reason as in call(): a failed
        # send must not leak a waiter that a later connection's ack
        # would resolve as if this force had been acknowledged.
        self._force_waiters.append((msg.high_lsn, fut))
        handle = loop.call_later(
            self.timeout, self._abort, "force ack timed out")
        try:
            return await fut
        finally:
            handle.cancel()

    async def close(self) -> None:
        self._abort("closed")
        for task in (self._reader_task, self._writer_task,
                     self._keepalive_task):
            if task is not None:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._reader_task = self._writer_task = self._keepalive_task = None
        if self._writer is not None:
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def async_retry(
    fn: Callable[[], Awaitable],
    policy: RetryPolicy,
    rng: random.Random,
    retry_on: tuple[type[BaseException], ...] = (NotEnoughServers,),
    on_retry: Callable[[int], Awaitable] | None = None,
):
    """:func:`repro.core.retry.retry_call` for coroutines.

    Same schedule and jitter stream; the delay is spent on
    ``asyncio.sleep`` instead of ``time.sleep``.
    """
    attempt = 0
    while True:
        try:
            return await fn()
        except retry_on:
            if attempt >= policy.max_attempts - 1:
                raise
            if on_retry is not None:
                await on_retry(attempt)
            await asyncio.sleep(policy.delay(attempt, rng))
            attempt += 1


class AdaptiveDelta:
    """Frugal-batching controller for the client's effective δ.

    ``config.delta`` is the protocol-safety ceiling — recovery copies
    the last δ records, so the unacknowledged window may never exceed
    it.  *Below* that ceiling the client is free to force earlier, and
    this controller picks the operating point from load, in the spirit
    of Taurus's frugal batching: heavy load rides windows at the
    ceiling (amortizing each ack round trip over many records), while
    sustained light load walks the trigger down toward ``min_delta`` so
    a force never waits behind a deep window and p50 force latency
    stays near the fsync floor.

    Signals, observed once per completed force:

    * ``queue_depth`` — frames still sitting in a send queue mean the
      writer tasks are behind the workload: grow.
    * the latency EWMA exceeding ``target_latency_s`` — acks are
      already slow, so buy throughput with bigger batches: grow.
    * a window at most half the current trigger, with fast acks, for
      ``shrink_patience`` consecutive forces — demand is light: shrink
      by one.

    Growth doubles (load spikes should reach the ceiling in a few
    forces); shrinking is linear with hysteresis so a burst does not
    whipsaw the trigger.
    """

    def __init__(self, max_delta: int, *, min_delta: int = 1,
                 target_latency_s: float = 0.002,
                 shrink_patience: int = 4):
        self.max_delta = max(1, max_delta)
        self.min_delta = max(1, min(min_delta, self.max_delta))
        self.target_latency_s = target_latency_s
        self.shrink_patience = shrink_patience
        #: the live implicit-force trigger, in [min_delta, max_delta].
        self.effective = self.max_delta
        self.latency_ewma_s = 0.0
        self.grows = 0
        self.shrinks = 0
        self._light_streak = 0

    def observe_force(self, latency_s: float, window_records: int,
                      queue_depth: int) -> None:
        """Feed one completed force's measurements into the controller."""
        self.latency_ewma_s = latency_s if not self.latency_ewma_s else (
            0.8 * self.latency_ewma_s + 0.2 * latency_s)
        loaded = (queue_depth > 0
                  or self.latency_ewma_s > self.target_latency_s
                  or window_records >= self.effective)
        if loaded:
            self._light_streak = 0
            if self.effective < self.max_delta:
                self.effective = min(self.max_delta, self.effective * 2)
                self.grows += 1
            return
        if (window_records <= self.effective // 2
                and self.effective > self.min_delta):
            self._light_streak += 1
            if self._light_streak >= self.shrink_patience:
                self.effective -= 1
                self.shrinks += 1
                self._light_streak = 0
        else:
            self._light_streak = 0


class AsyncReplicatedLog:
    """Client-side replicated log over ``M`` real servers, ``N`` copies.

    ``servers`` maps server id → ``(host, port)``, or is a
    :class:`~repro.rt.placement.PlacementDirectory` — then the roster,
    the ``(M, N, δ)`` configuration, and the write-set preference
    order are all computed from the fleet spec (``config`` may be
    omitted), and :meth:`apply_placement` migrates the write set live
    when the roster changes.  The instance is not safe for concurrent
    use by multiple tasks (the paper's log is single-client by design;
    run one instance per client task).
    """

    def __init__(
        self,
        client_id: str,
        servers: "Mapping[str, tuple[str, int]] | PlacementDirectory",
        config: ReplicationConfig | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        timeout: float = 5.0,
        batch_bytes: int = PACKET_PAYLOAD_BYTES,
        send_queue_limit: int = 64,
        keepalive_interval: float = 0.5,
        keepalive_misses: int = 2,
        slow_strike_limit: int = 3,
    ):
        self._placement: PlacementDirectory | None = None
        if isinstance(servers, PlacementDirectory):
            self._placement = servers
            if config is None:
                config = servers.config()
            servers = servers.addresses()
        if config is None:
            raise NotEnoughServers(
                "config is required unless servers is a PlacementDirectory"
            )
        if len(servers) != config.total_servers:
            raise NotEnoughServers(
                f"configuration names M={config.total_servers} servers "
                f"but {len(servers)} addresses were supplied"
            )
        self.client_id = client_id
        self.config = config
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.rng = rng if rng is not None else random.Random(0)
        self.timeout = timeout
        self.batch_bytes = batch_bytes
        #: consecutive queue-full strikes that demote a write-set
        #: server (the Section 5.4 "switch servers when necessary").
        self.slow_strike_limit = slow_strike_limit
        self._conn_params = dict(send_queue_limit=send_queue_limit,
                                 keepalive_interval=keepalive_interval,
                                 keepalive_misses=keepalive_misses)
        self._conns: dict[str, ServerConnection] = {
            sid: self._make_conn(sid, host, port)
            for sid, (host, port) in servers.items()
        }
        self._strikes: dict[str, int] = {}
        self._switch_lock = asyncio.Lock()
        self._merged: MergedIntervalMap | None = None
        self._epoch: Epoch = 0
        self._next_lsn: LSN = 1
        self._write_set: list[str] = []
        #: records buffered, not yet sent anywhere.
        self._buffer: list[StoredRecord] = []
        #: records sent (or buffered) since the last fully-acked force.
        self._window: list[StoredRecord] = []
        #: wire images of the above, encoded exactly once at write()
        #: time and shared by every frame that carries the record.
        self._buffer_enc: list[bytes] = []
        self._window_enc: list[bytes] = []
        self._buffer_bytes = 0
        self._last_record: StoredRecord | None = None
        self._last_record_enc: bytes | None = None
        #: adaptive implicit-force trigger (≤ config.delta, never more).
        self.delta_controller = AdaptiveDelta(config.delta)
        # Bookkeeping for experiments and tests:
        self.writes_performed = 0
        self.forces_performed = 0
        self.reads_performed = 0
        self.recoveries_performed = 0
        self.server_switches = 0
        self.missing_intervals_seen = 0
        self.slow_strikes = 0
        self.truncations_requested = 0
        self.records_truncated = 0
        self.quota_throttles = 0
        self.rebalance_moves = 0
        self.takeovers_performed = 0
        self.fences_installed = 0

    # -- connection management ----------------------------------------

    def _make_conn(self, sid: str, host: str, port: int) -> ServerConnection:
        return ServerConnection(sid, host, port, timeout=self.timeout,
                                on_missing=self._on_missing,
                                client_id=self.client_id,
                                **self._conn_params)

    def _candidate_order(self) -> list[str]:
        """Servers in the order recovery installs and switches try them.

        With a placement directory this is the client's ring-walk
        preference (write set first, then spares), so a deliberate
        rebalance and a crash-driven Section 5.4 switch land on the
        same replacement.  Without one it is the historical sorted-id
        order.  Connections outside the current roster (still draining
        after a rebalance) sort last.
        """
        if self._placement is None:
            return sorted(self._conns)
        pref = [sid for sid in self._placement.preference(self.client_id)
                if sid in self._conns]
        return pref + [sid for sid in sorted(self._conns)
                       if sid not in pref]

    async def _ensure_connections(self) -> list[str]:
        """(Re)connect every dead server; return ids of live ones."""
        for conn in self._conns.values():
            if not conn.alive:
                try:
                    await conn.connect()
                except ServerUnavailable:
                    continue
        return [sid for sid, conn in self._conns.items() if conn.alive]

    def _on_missing(self, server_id: str, msg: MissingIntervalMsg) -> None:
        """Answer a MissingInterval NAK with NewInterval.

        The gap means those records were written to other servers while
        this one was out of the write set; telling it to start a new
        interval is the Figure 4-1 response.  A full send queue drops
        the answer — the server will simply NAK again.
        """
        self.missing_intervals_seen += 1
        conn = self._conns.get(server_id)
        if conn is not None and conn.alive and self._epoch:
            try:
                conn.try_send(NewIntervalMsg(
                    self.client_id, self._epoch, starting_lsn=msg.hi + 1
                ))
            except ServerUnavailable:
                pass

    # -- lifecycle ----------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._merged is not None

    async def initialize(self) -> None:
        """The client restart procedure of Section 3.1.2, over TCP."""

        async def attempt() -> None:
            await self._ensure_connections()
            clientfault.hit("client.init.connect")
            lists = await self._gather_interval_lists()
            clientfault.hit("client.init.lists")
            merged = MergedIntervalMap.merge(lists)
            clientfault.hit("client.init.merge")
            epoch = await self._new_epoch(merged.highest_epoch())
            await self._perform_recovery(merged, epoch)

        async def on_retry(_attempt: int) -> None:
            await self._ensure_connections()

        await async_retry(attempt, self.retry_policy, self.rng,
                          on_retry=on_retry)
        self.recoveries_performed += 1

    async def takeover(self) -> None:
        """Seize ownership of the stream from a possibly-live writer.

        :meth:`initialize` assumes the previous owner is *gone* — its
        unacknowledged window may be discarded, but nothing stops the
        old process from writing again if it was merely partitioned.
        This is the linearizable handoff: after gathering interval
        lists and drawing a fresh epoch exactly as a restart would, a
        **fence** at the new epoch is installed durably on at least
        ``M − N + 1`` servers *before* recovery runs.  Every N-server
        write set intersects that fence set, so any ForceLog the old
        owner issues after this point is refused with ``ERR_FENCED``
        on at least one required server and can never be acknowledged
        — the old writer observes a terminal :class:`LogFenced`
        instead of silently diverging the log.

        The handoff point is the fence install: records the old owner
        forced *before* it may commit, records after it cannot.  The
        interval lists recovery runs against are therefore gathered
        (again) **after** the fence is in place — a first gather only
        seeds the epoch floor.  Lists read before the fence could miss
        a force the old owner got acknowledged in the gap, and
        recovery would silently drop an acknowledged record; once the
        fence holds, no new ack can form, and every already-acked
        record sits on N servers, at least one of which is in any
        ``M − N + 1`` gather quorum.  Like :meth:`initialize` this
        retries on quorum shortfalls; it raises :class:`LogFenced` if
        a yet-newer owner fenced past us mid-takeover (takeovers
        themselves linearize through the monotone fence epoch).
        """

        async def attempt() -> None:
            await self._ensure_connections()
            clientfault.hit("client.handoff.connect")
            lists = await self._gather_interval_lists()
            clientfault.hit("client.handoff.lists")
            floor = MergedIntervalMap.merge(lists).highest_epoch()
            epoch = await self._new_epoch(floor)
            clientfault.hit("client.handoff.epoch")
            await self._install_fence(epoch)
            clientfault.hit("client.handoff.fenced")
            # Post-fence gather: the state as of the handoff point.
            merged = MergedIntervalMap.merge(
                await self._gather_interval_lists())
            await self._perform_recovery(merged, epoch)

        async def on_retry(_attempt: int) -> None:
            await self._ensure_connections()

        await async_retry(attempt, self.retry_policy, self.rng,
                          on_retry=on_retry)
        self.recoveries_performed += 1
        self.takeovers_performed += 1

    async def _install_fence(self, epoch: Epoch) -> int:
        """Durably fence the stream at ``epoch`` on enough servers.

        Tries *every* reachable server (the wider the fence, the
        sooner the old owner hits it) but requires acknowledgment from
        at least ``config.init_quorum`` — the ``M − N + 1`` floor that
        guarantees intersection with every possible write set.  A
        server answering ``ERR_FENCED`` means a higher epoch already
        owns the stream: that :class:`LogFenced` is terminal for this
        takeover and propagates.
        """
        fenced = 0
        for sid in self._candidate_order():
            conn = self._conns[sid]
            if not conn.alive:
                continue
            try:
                reply = await conn.call(
                    FenceLogCall(self.client_id, epoch=epoch))
            except ServerUnavailable:
                continue
            if isinstance(reply, FenceReply):
                fenced += 1
                self.fences_installed += 1
                # Index 0 = the fence holds on one server only; the
                # old owner is already locked out of write sets that
                # include it, but not yet out of all of them.
                clientfault.hit("client.handoff.fence.ack")
        if fenced < self.config.init_quorum:
            raise NotEnoughServers(
                f"fence install needs {self.config.init_quorum} servers "
                f"to guarantee write-set intersection; only {fenced} "
                f"acknowledged"
            )
        return fenced

    async def _gather_interval_lists(self) -> list[ServerIntervals]:
        results: list[ServerIntervals] = []
        for sid in sorted(self._conns):
            conn = self._conns[sid]
            if not conn.alive:
                continue
            try:
                reply = await conn.call(IntervalListCall(self.client_id))
            except ServerUnavailable:
                continue
            if isinstance(reply, IntervalListReply):
                results.append(ServerIntervals(sid, reply.intervals))
        if len(results) < self.config.init_quorum:
            raise NotEnoughServers(
                f"client initialization needs interval lists from "
                f"{self.config.init_quorum} servers; only {len(results)} "
                f"responded"
            )
        return results

    async def _new_epoch(self, floor: Epoch) -> Epoch:
        """Appendix I NewID over the log-server connections.

        Reads ``⌈(M+1)/2⌉`` generator representatives, writes
        ``max + 1`` to ``⌈M/2⌉`` — the read set of any invocation
        intersects the write set of every earlier one.
        """
        m = self.config.total_servers
        values: list[int] = []
        writable: list[ServerConnection] = []
        for sid in sorted(self._conns):
            conn = self._conns[sid]
            if not conn.alive:
                continue
            try:
                reply = await conn.call(GeneratorReadCall(self.client_id))
            except ServerUnavailable:
                continue
            if isinstance(reply, GeneratorReadReply):
                values.append(reply.value)
                writable.append(conn)
        if len(values) < read_quorum_size(m):
            raise NotEnoughServers(
                f"generator read quorum needs {read_quorum_size(m)} "
                f"representatives, only {len(values)} available"
            )
        clientfault.hit("client.epoch.read")
        new_value = max(values) + 1
        if new_value <= floor:
            raise StaleEpoch("generator", new_value, floor)
        written = 0
        for conn in writable:
            try:
                await conn.call(GeneratorWriteCall(self.client_id,
                                                   value=new_value))
            except ServerUnavailable:
                continue
            written += 1
            if written >= write_quorum_size(m):
                break
        if written < write_quorum_size(m):
            raise NotEnoughServers(
                f"generator write quorum needs {write_quorum_size(m)} "
                f"representatives, wrote {written}"
            )
        clientfault.hit("client.epoch.written")
        return new_value

    async def _fetch_record(
        self, merged: MergedIntervalMap, lsn: LSN
    ) -> StoredRecord:
        """The winning copy of ``lsn`` from some server storing it."""
        for sid in merged.servers_for(lsn):
            conn = self._conns.get(sid)
            if conn is None or not conn.alive:
                continue
            try:
                reply = await conn.call(
                    ReadLogForwardCall(self.client_id, lsn)
                )
            except ServerUnavailable:
                continue
            if isinstance(reply, ReadLogReply):
                for record in reply.records:
                    if record.lsn == lsn:
                        return record
        raise NotEnoughServers(
            f"no reachable server stores LSN {lsn} needed for recovery"
        )

    async def _perform_recovery(
        self, merged: MergedIntervalMap, new_epoch: Epoch
    ) -> None:
        """Steps 3–5 of the restart procedure: copy, guard, install."""
        config = self.config
        high = merged.high_lsn() or 0
        copy_lsns = [lsn
                     for lsn in range(max(1, high - config.delta + 1), high + 1)
                     if lsn in merged]
        staged = [
            StoredRecord(lsn=r.lsn, epoch=new_epoch, present=r.present,
                         data=r.data, kind=r.kind)
            for r in [await self._fetch_record(merged, lsn)
                      for lsn in copy_lsns]
        ] + [
            StoredRecord(lsn=high + i, epoch=new_epoch, present=False,
                         kind="guard")
            for i in range(1, config.delta + 1)
        ]
        clientfault.hit("client.recovery.staged")
        ordered = list(self._write_set) + [
            sid for sid in self._candidate_order()
            if sid not in self._write_set
        ]
        installed: list[str] = []
        for sid in ordered:
            if len(installed) >= config.copies:
                break
            conn = self._conns[sid]
            if not conn.alive:
                continue
            try:
                await conn.call(CopyLogCall(self.client_id, new_epoch,
                                            tuple(staged)))
                clientfault.hit("client.recovery.copylog")
                await conn.call(InstallCopiesCall(self.client_id, new_epoch))
            except ServerUnavailable:
                continue
            clientfault.hit("client.recovery.install")
            installed.append(sid)
        if len(installed) < config.copies:
            raise NotEnoughServers(
                f"recovery could install copies on only {len(installed)} "
                f"servers; {config.copies} required"
            )
        clientfault.hit("client.recovery.commit")
        for record in staged:
            for sid in installed:
                merged.note(record.lsn, new_epoch, sid)
        self._merged = merged
        self._epoch = new_epoch
        self._next_lsn = (merged.high_lsn() or 0) + 1
        self._write_set = installed
        self._buffer = []
        self._window = []
        self._buffer_enc = []
        self._window_enc = []
        self._buffer_bytes = 0
        self._last_record = staged[-1] if staged else None
        self._last_record_enc = (
            encode_stored_record(staged[-1]) if staged else None)

    def _require_init(self) -> MergedIntervalMap:
        if self._merged is None:
            raise NotInitialized(
                "the replicated log must be initialized before use"
            )
        return self._merged

    # -- the write path -----------------------------------------------

    async def write(self, data: bytes, kind: str = "data") -> LSN:
        """WriteLog: append ``data``; returns its LSN immediately.

        The record is buffered; it reaches the network when a packet
        fills, and becomes durable at the next :meth:`force` (whose ack
        covers the whole window) — exactly the paper's asynchronous
        WriteLog contract.
        """
        self._require_init()
        lsn = self._next_lsn
        # Trusted construction: the client assigns the LSN and epoch
        # itself; ``encode_stored_record`` below still rejects an
        # unregistered kind.
        record = trusted_stored_record(lsn, self._epoch, True, data, kind)
        self._next_lsn = lsn + 1
        self._buffer.append(record)
        # Encode once, here; every WriteLog/ForceLog frame that carries
        # this record — to any server, any number of times — reuses
        # these bytes.
        enc = encode_stored_record(record)
        self._buffer_enc.append(enc)
        self._buffer_bytes += len(enc)
        self.writes_performed += 1
        clientfault.hit("client.write.buffered")
        if (len(self._window) + len(self._buffer)
                >= self.delta_controller.effective):
            # δ unacknowledged records: must not run further ahead
            # (adaptive δ only ever lowers this trigger below the
            # configured protocol ceiling).
            await self.force()
        elif self._buffer_bytes >= self.batch_bytes:
            await self._flush_writes()
        return lsn

    async def _flush_writes(self) -> None:
        """Stream the buffer as an unacknowledged WriteLog batch.

        Sends never wait: :meth:`ServerConnection.try_send` either
        queues the frame or reports the queue full.  A full queue is a
        *strike* against that server — the batch is simply skipped
        there (safe: the next force re-sends the whole window) — and
        ``slow_strike_limit`` consecutive strikes demote the server
        from the write set exactly as a crash would (Section 5.4).
        """
        if not self._buffer:
            return
        batch = tuple(self._buffer)
        msg = WriteLogMsg.trusted(self.client_id, self._epoch, batch)
        bufs = frame_iov(msg, self._buffer_enc)
        for sid in list(self._write_set):
            try:
                sent = self._conns[sid].try_send(msg, bufs)
            except ServerUnavailable:
                await self._replace_server(sid)
                continue
            if sent:
                self._strikes[sid] = 0
                continue
            self.slow_strikes += 1
            strikes = self._strikes.get(sid, 0) + 1
            self._strikes[sid] = strikes
            if strikes >= self.slow_strike_limit:
                self._strikes[sid] = 0
                await self._replace_server(sid)
        clientfault.hit("client.flush.sent")
        self._window.extend(batch)
        self._window_enc.extend(self._buffer_enc)
        self._buffer = []
        self._buffer_enc = []
        self._buffer_bytes = 0
        # One scheduling point per flush: without it, back-to-back
        # writes starve the writer tasks and even healthy servers'
        # queues would overflow.
        await asyncio.sleep(0)

    async def force(self) -> LSN:
        """ForceLog: make every buffered record durable on N servers.

        Sends the whole unacknowledged window (re-sending records
        already streamed by WriteLog — duplicates are tolerated) and
        waits for a NewHighLSN from each write-set server, replacing
        dead servers as needed.
        """
        self._require_init()
        records = tuple(self._window) + tuple(self._buffer)
        record_bufs = self._window_enc + self._buffer_enc
        if not records:
            if self._last_record is None or self._last_record.epoch != self._epoch:
                return self._next_lsn - 1
            # Nothing unacknowledged: re-force the tail record so the
            # ack still carries a durability promise for this epoch.
            records = (self._last_record,)
            record_bufs = [self._last_record_enc]
        msg = ForceLogMsg.trusted(self.client_id, self._epoch, records)
        bufs = frame_iov(msg, record_bufs)

        # Forces go to every write-set server concurrently, so the ack
        # wait is max(server latency), not the sum — a hung member
        # cannot serialize the healthy ones behind it.  _replace_server
        # rewrites self._write_set in place and feeds the replacement
        # the whole window, so a server lost mid-force still leaves
        # every record on N servers.  When no spare exists it raises
        # NotEnoughServers, which the retry policy paces while outages
        # heal.
        async def forced(sid: str) -> LSN:
            acked = await self._conns[sid].force(msg, bufs)
            # One hit per acknowledgment as it lands, so index 0 is
            # "after a partial ack" — some write-set servers hold the
            # window durably, others may not have received it yet.
            clientfault.hit("client.force.ack")
            return acked

        async def guarded() -> LSN:
            clientfault.hit("client.force.begin")
            targets = list(self._write_set)
            results = await asyncio.gather(
                *(forced(sid) for sid in targets),
                return_exceptions=True,
            )
            for result in results:
                if isinstance(result, LogFenced):
                    # Ownership was taken over: checked before any
                    # per-server handling so a concurrent connection
                    # failure cannot steer this force into a server
                    # switch (and a wasted spare) when the whole
                    # stream is already lost to a higher epoch.
                    raise result
            for sid, result in zip(targets, results):
                if isinstance(result, TenantQuotaExceeded):
                    # A fleet-wide admission condition: switching
                    # servers cannot help, so back off on the retry
                    # schedule instead of burning a spare.
                    self.quota_throttles += 1
                    raise result
                if isinstance(result, ServerUnavailable):
                    if sid in self._write_set:
                        await self._replace_server(sid, records)
                elif isinstance(result, BaseException):
                    raise result
            return msg.high_lsn

        loop = asyncio.get_running_loop()
        queue_depth = max(
            (self._conns[sid].queued_frames() for sid in self._write_set),
            default=0,
        )
        t0 = loop.time()
        high = await async_retry(
            guarded, self.retry_policy, self.rng,
            retry_on=(NotEnoughServers, TenantQuotaExceeded),
            on_retry=self._reconnect_for_retry,
        )
        clientfault.hit("client.force.acked")
        self.delta_controller.observe_force(loop.time() - t0,
                                            len(records), queue_depth)
        merged = self._require_init()
        # Forced records are one consecutive LSN run by construction.
        for sid in self._write_set:
            merged.note_range(records[0].lsn, records[-1].lsn,
                              self._epoch, sid)
        self._window = []
        self._buffer = []
        self._window_enc = []
        self._buffer_enc = []
        self._buffer_bytes = 0
        self._last_record = records[-1]
        self._last_record_enc = record_bufs[-1]
        self.forces_performed += 1
        return high

    async def _reconnect_for_retry(self, _attempt: int) -> None:
        await self._ensure_connections()

    async def _replace_server(
        self, dead_sid: str, pending: tuple[StoredRecord, ...] = ()
    ) -> None:
        """Swap a failed write-set server for a spare, mid-stream.

        The spare is told where the fresh interval starts (NewInterval)
        and force-fed the unacknowledged window so every pending record
        still reaches ``N`` servers.  A lock serializes switches so the
        concurrent per-server force paths cannot race two replacements
        onto the same write-set slot.
        """
        async with self._switch_lock:
            if dead_sid not in self._write_set:
                return  # another path already replaced it
            clientfault.hit("client.switch.begin")
            live = await self._ensure_connections()
            spares = [sid for sid in self._candidate_order()
                      if sid in live and sid not in self._write_set]
            pending = pending or tuple(self._window) + tuple(self._buffer)
            for spare in spares:
                if await self._switch_member(dead_sid, spare, pending):
                    self.server_switches += 1
                    clientfault.hit("client.switch.done")
                    return
            raise NotEnoughServers(
                f"no spare server available to replace {dead_sid}"
            )

    async def _switch_member(
        self, old_sid: str, new_sid: str,
        pending: tuple[StoredRecord, ...],
    ) -> bool:
        """Section 5.4's write-set switch, one member at a time.

        Feed ``new_sid`` the unacknowledged window (NewInterval, then a
        ForceLog so the records are durable there *before* the swap),
        then replace ``old_sid`` in the write set.  Returns False if
        the incoming server refused the feed — the caller tries the
        next candidate.  Callers hold ``_switch_lock``.
        """
        merged = self._require_init()
        conn = self._conns[new_sid]
        try:
            if pending:
                await conn.send(NewIntervalMsg(
                    self.client_id, self._epoch,
                    starting_lsn=pending[0].lsn,
                ))
                await conn.force(ForceLogMsg(
                    self.client_id, self._epoch, pending
                ))
        except ServerUnavailable:
            return False
        # The incoming server holds the window but is not yet in the
        # write set — the exact mid-switch seam.
        clientfault.hit("client.switch.feed")
        index = self._write_set.index(old_sid)
        self._write_set[index] = new_sid
        self._strikes.pop(old_sid, None)
        for record in pending:
            merged.note(record.lsn, self._epoch, new_sid)
        return True

    async def apply_placement(self, directory: "PlacementDirectory") -> list[tuple[str, str]]:
        """Adopt a new placement directory, rebalancing live if needed.

        Called when the roster changes (server added or retired).  The
        client reconciles its write set with the directory's write set
        for this client id, moving each outgoing member through the
        same §5.4 switch the failure path uses — the unacknowledged
        window is forced onto the incoming server before the swap, so
        no acknowledged record ever drops below ``N`` copies.  Members
        already in the new write set stay put: a roster change of one
        server moves only the clients whose write set contained it.

        Returns the ``(old_sid, new_sid)`` pairs actually switched.
        """
        self._require_init()
        async with self._switch_lock:
            self._placement = directory
            # New roster entries need live connections before they can
            # be fed; config tracks the (possibly resized) fleet.
            addresses = directory.addresses()
            for sid, (host, port) in addresses.items():
                if sid not in self._conns:
                    self._conns[sid] = self._make_conn(sid, host, port)
            self.config = directory.config()
            await self._ensure_connections()
            target = [sid for sid in directory.write_set(self.client_id)
                      if sid in self._conns]
            outgoing = [sid for sid in self._write_set if sid not in target]
            incoming = [sid for sid in target if sid not in self._write_set]
            pending = tuple(self._window) + tuple(self._buffer)
            moves: list[tuple[str, str]] = []
            for old_sid, new_sid in zip(outgoing, incoming):
                if await self._switch_member(old_sid, new_sid, pending):
                    moves.append((old_sid, new_sid))
                    self.rebalance_moves += 1
            # Drop connections to servers that left the roster once
            # they are out of the write set; reads of old records they
            # stored are redirected by the merged interval map to the
            # surviving copies.
            for sid in list(self._conns):
                if sid not in addresses and sid not in self._write_set:
                    self._conns.pop(sid)._abort("left roster")
            return moves

    # -- Section 5.3: log space management ----------------------------

    async def truncate(self, low_water: LSN) -> int:
        """Tell every reachable server to reclaim records below ``low_water``.

        The paper's Section 5.3 contract: the client promises that
        records below the truncation point "will never be read again",
        and servers are free to recycle the space.  The low-water mark
        is clamped to the unacknowledged window (truncating unacked
        records would let an ack cover records no server retains).
        Servers that are down simply miss this round; they reclaim at
        the next one.  Returns the total records dropped across
        servers.
        """
        merged = self._require_init()
        unacked = tuple(self._window) + tuple(self._buffer)
        if unacked:
            low_water = min(low_water, unacked[0].lsn)
        dropped = 0
        for sid in sorted(self._conns):
            conn = self._conns[sid]
            if not conn.alive:
                continue
            try:
                reply = await conn.call(
                    TruncateLogCall(self.client_id, low_water_lsn=low_water,
                                    epoch=self._epoch)
                )
            except ServerUnavailable:
                continue
            if isinstance(reply, TruncateReply):
                dropped += reply.records_dropped
                # Index 0 = after the first server applied the mark but
                # before the rest heard about it.
                clientfault.hit("client.truncate.reply")
        merged.prune_below(low_water)
        self.truncations_requested += 1
        self.records_truncated += dropped
        return dropped

    # -- reads --------------------------------------------------------

    async def read(self, lsn: LSN) -> LogRecord:
        """ReadLog: the record written with LSN ``lsn``."""
        merged = self._require_init()
        entry = merged.entry(lsn)
        if entry is None:
            raise LSNNotWritten(lsn)
        for sid in entry.servers:
            conn = self._conns.get(sid)
            if conn is None or not conn.alive:
                continue
            try:
                reply = await conn.call(ReadLogForwardCall(self.client_id, lsn))
            except ServerUnavailable:
                continue
            if not isinstance(reply, ReadLogReply):
                continue
            for record in reply.records:
                if record.lsn == lsn and record.epoch >= entry.epoch:
                    self.reads_performed += 1
                    if not record.present:
                        raise RecordNotPresent(lsn)
                    return record.to_log_record()
        raise NotEnoughServers(f"no server holding LSN {lsn} is reachable")

    async def read_forward(self, lsn: LSN) -> tuple[StoredRecord, ...]:
        """ReadLogForward from any server known to store ``lsn``."""
        merged = self._require_init()
        for sid in merged.servers_for(lsn):
            conn = self._conns.get(sid)
            if conn is None or not conn.alive:
                continue
            try:
                reply = await conn.call(ReadLogForwardCall(self.client_id, lsn))
            except ServerUnavailable:
                continue
            if isinstance(reply, ReadLogReply):
                return reply.records
        raise NotEnoughServers(f"no server holding LSN {lsn} is reachable")

    def end_of_log(self) -> LSN:
        """EndOfLog: the high value in the merged interval list."""
        merged = self._require_init()
        return merged.high_lsn() or 0

    @property
    def current_epoch(self) -> Epoch:
        return self._epoch

    @property
    def write_set(self) -> tuple[str, ...]:
        return tuple(self._write_set)

    async def close(self) -> None:
        for conn in self._conns.values():
            await conn.close()

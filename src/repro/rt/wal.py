"""Run the transaction layer over the real network runtime.

The recovery manager (:mod:`repro.client.recovery_manager`) speaks a
generator-based backend interface so the same transaction code runs
in-process, under the discrete-event simulator, and — with this
module — against real TCP log servers:

* :class:`AsyncWalBackend` adapts :class:`~repro.rt.client.
  AsyncReplicatedLog` to the backend protocol.  Each method is a
  generator that *yields awaitables*; it never touches the event loop
  itself.
* :func:`drive` is the loop: it awaits whatever the generator yields
  and sends the result back in, until the generator returns.

So ``await drive(rm.commit(txn))`` runs a commit whose WriteLog /
ForceLog calls travel over real sockets, and a checkpoint configured
with ``truncate_on_checkpoint=True`` really truncates the servers'
logs at the Section 5.3 low-water mark::

    log = AsyncReplicatedLog("c1", addresses, config)
    await log.initialize()
    rm = RecoveryManager(AsyncWalBackend(log), Database(),
                         checkpoint_every=8, truncate_on_checkpoint=True)
    txn = await drive(rm.begin())
    await drive(rm.update(txn, "a", "1"))
    await drive(rm.commit(txn))
"""

from __future__ import annotations

from ..core.errors import LSNNotWritten, RecordNotPresent
from ..core.records import LogRecord, LSN
from .client import AsyncReplicatedLog


async def drive(gen):
    """Drive a backend-interface generator, awaiting what it yields.

    Exceptions raised by an awaitable are thrown back *into* the
    generator at the yield point, so backend code can catch wire-level
    errors (``except LSNNotWritten:``) exactly like the in-process
    backends do.
    """
    result = None
    pending: BaseException | None = None
    while True:
        try:
            if pending is None:
                awaitable = gen.send(result)
            else:
                exc, pending = pending, None
                awaitable = gen.throw(exc)
        except StopIteration as stop:
            return stop.value
        try:
            result = await awaitable
        except Exception as exc:
            pending = exc
            result = None


class AsyncWalBackend:
    """The recovery manager's log backend over an AsyncReplicatedLog.

    Every generator method yields coroutines for :func:`drive` to
    await; ``end_of_log`` is synchronous, mirroring the other backends.
    """

    def __init__(self, log: AsyncReplicatedLog):
        self.replicated = log

    def log(self, data: bytes, kind: str = "data"):
        return (yield self.replicated.write(data, kind))

    def force(self):
        return (yield self.replicated.force())

    def read(self, lsn: LSN):
        try:
            return (yield self.replicated.read(lsn))
        except LSNNotWritten:
            # Reading back one's own δ-buffered write (e.g. the abort
            # path fetching an undo value): the record is on the wire
            # but unacknowledged, so the merged interval map does not
            # cover it yet.  Force, then retry once.
            yield self.replicated.force()
            return (yield self.replicated.read(lsn))

    def end_of_log(self) -> LSN:
        return self.replicated.end_of_log()

    def truncate(self, low_water: LSN):
        """Section 5.3: drop records below ``low_water`` cluster-wide."""
        return (yield self.replicated.truncate(low_water))

    def scan_backward(self, from_lsn: LSN | None = None):
        """Collect present records newest-first (restart recovery)."""
        records: list[LogRecord] = []
        start = from_lsn if from_lsn is not None \
            else self.replicated.end_of_log()
        for lsn in range(start, 0, -1):
            try:
                record = yield self.replicated.read(lsn)
            except (RecordNotPresent, LSNNotWritten):
                continue
            records.append(record)
        return records

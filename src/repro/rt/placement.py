"""Sharded multi-tenant placement: who writes where in a large fleet.

The paper's Section 5.4 assigns each client's write-set to N of the M
log servers by hand ("the load assignment need not be static...a
client can switch servers when necessary").  A fleet serving thousands
of client streams needs that assignment to be *automatic*, *balanced*,
and *stable under roster changes* — the shape Taurus runs with a
shared fleet of Log Stores serving many database masters.

Three pieces, all coordinator-free:

* :class:`HashRing` — a consistent-hash ring with virtual nodes.  The
  ring is a pure function of the server roster (BLAKE2b of
  ``"<server_id>#<vnode>"``), so **any process computes the identical
  ring from the roster alone** — no directory service, no handshakes.
  Placing ``(tenant, client)`` keys on the ring balances streams to
  within a few percent at ≥100 vnodes, and adding or removing one
  server remaps only ~1/M of keys (the classic minimal-movement
  property, verified by hypothesis tests).

* :class:`ClusterSpec` — the ``placements.json`` file format: the
  ``host:port`` roster, the replication shape ``(N, δ)``, ring vnodes,
  and per-tenant quotas.  One file shared by ``repro serve`` (quotas),
  ``repro loadgen``/``ring``/``stats --all`` (roster), the loopback
  harness, and the placement directory.

* :class:`PlacementDirectory` — the client-facing view: for a client
  id it yields the full *preference order* of the fleet (a ring walk
  visiting every server exactly once) whose first N servers are the
  write set.  The same order ranks spares, so the Section 5.4 switch
  a crash triggers lands on the same server a deliberate rebalance
  would pick — failure handling and rebalancing converge on one
  directory.

Tenancy is encoded in the client id: ``"<tenant>/<stream>"`` (a plain
id is its own tenant).  Placement keys hash the full id, so one
tenant's streams spread over the fleet instead of hot-spotting a
single write set.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from hashlib import blake2b, sha256
from typing import Iterable, Mapping

from ..core.config import ReplicationConfig
from ..core.errors import ConfigurationError

#: Default virtual nodes per server.  128 keeps the worst arc within a
#: few percent of 1/M; the balance property test pins the bound.
DEFAULT_VNODES = 128

#: Separates tenant from stream in a client id.
TENANT_SEPARATOR = "/"


def tenant_of(client_id: str) -> str:
    """The tenant a client id belongs to (a plain id is its own tenant)."""
    return client_id.partition(TENANT_SEPARATOR)[0]


def qualified_client_id(tenant: str, stream: str) -> str:
    """``"<tenant>/<stream>"`` — the id a placed, quota'd client uses."""
    if not tenant or TENANT_SEPARATOR in tenant:
        raise ValueError(f"bad tenant name {tenant!r}")
    return f"{tenant}{TENANT_SEPARATOR}{stream}"


def _hash64(key: str) -> int:
    """Stable 64-bit ring position — identical across processes.

    Python's built-in ``hash`` is salted per process (PYTHONHASHSEED),
    which would break the coordinator-free contract; BLAKE2b is not.
    """
    return int.from_bytes(blake2b(key.encode("utf-8"),
                                  digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring over a server roster, with virtual nodes.

    Immutable once built; derive changed rings with
    :meth:`with_server` / :meth:`without_server`.  Every point is
    ``_hash64("<sid>#<vnode>")``, so two processes holding the same
    roster hold byte-identical rings.

    ``capacities`` weights servers for heterogeneous fleets: a server
    with capacity ``c`` gets ``round(vnodes * c)`` virtual nodes (at
    least 1), so a box declared twice as big draws ~twice the arc — and
    with it ~twice the streams.  Servers absent from the mapping weigh
    1.0, so a capacity-free roster builds the exact same ring as
    before.
    """

    def __init__(self, server_ids: Iterable[str], *,
                 vnodes: int = DEFAULT_VNODES,
                 capacities: Mapping[str, float] | None = None):
        self.server_ids = tuple(sorted(set(server_ids)))
        if not self.server_ids:
            raise ConfigurationError("a hash ring needs at least one server")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be at least 1")
        self.vnodes = vnodes
        self.capacities = {sid: float(c)
                           for sid, c in dict(capacities or {}).items()
                           if sid in self.server_ids}
        for sid, c in self.capacities.items():
            if not c > 0:
                raise ConfigurationError(
                    f"server {sid!r} capacity must be positive, got {c}")
        points: list[tuple[int, str]] = []
        for sid in self.server_ids:
            for v in range(self.vnode_count(sid)):
                points.append((_hash64(f"{sid}#{v}"), sid))
        # Ties (vanishingly rare at 64 bits) break by server id, so
        # the ring stays deterministic even then.
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def successors(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* servers clockwise of ``key``."""
        if count > len(self.server_ids):
            raise ConfigurationError(
                f"asked for {count} distinct servers, roster has "
                f"{len(self.server_ids)}"
            )
        start = bisect_right(self._hashes, _hash64(key))
        picked: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for i in range(n):
            sid = self._points[(start + i) % n][1]
            if sid not in seen:
                seen.add(sid)
                picked.append(sid)
                if len(picked) == count:
                    break
        return picked

    def preference(self, key: str) -> list[str]:
        """Every server, in ring-walk order from ``key``.

        The head is the write set; the tail ranks spares, so a failure
        switch and a rebalance pick replacements identically.
        """
        return self.successors(key, len(self.server_ids))

    def vnode_count(self, server_id: str) -> int:
        """Virtual nodes this server contributes (capacity-weighted)."""
        return max(1, round(self.vnodes * self.capacities.get(server_id,
                                                              1.0)))

    def with_server(self, server_id: str, *,
                    capacity: float | None = None) -> "HashRing":
        capacities = dict(self.capacities)
        if capacity is not None:
            capacities[server_id] = capacity
        return HashRing(self.server_ids + (server_id,),
                        vnodes=self.vnodes, capacities=capacities)

    def without_server(self, server_id: str) -> "HashRing":
        rest = [sid for sid in self.server_ids if sid != server_id]
        return HashRing(rest, vnodes=self.vnodes,
                        capacities=self.capacities)


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Per-tenant admission limits, enforced server-side.

    ``max_streams`` bounds concurrent client streams per tenant on one
    server (0 = unlimited); ``max_records_per_s`` bounds the rate of
    *forced* (durably acknowledged) records per tenant per server via
    a token bucket (0 = unlimited).  Over-quota requests get a typed
    ``ErrorReply`` (``ERR_QUOTA``) — the same back-pressure path a
    wedged disk uses — which the client backs off on instead of
    switching servers (every server would refuse equally).
    """

    max_streams: int = 0
    max_records_per_s: float = 0.0
    #: burst allowance, in seconds of rate (bucket capacity).
    burst_s: float = 1.0
    #: seconds a stream slot may sit idle before it can be reclaimed
    #: to admit a new stream (0 = sticky for the daemon's lifetime).
    idle_ttl_s: float = 0.0

    def as_dict(self) -> dict:
        return {"max_streams": self.max_streams,
                "max_records_per_s": self.max_records_per_s,
                "burst_s": self.burst_s,
                "idle_ttl_s": self.idle_ttl_s}

    @classmethod
    def from_dict(cls, raw: Mapping) -> "TenantQuota":
        return cls(max_streams=int(raw.get("max_streams", 0)),
                   max_records_per_s=float(raw.get("max_records_per_s", 0.0)),
                   burst_s=float(raw.get("burst_s", 1.0)),
                   idle_ttl_s=float(raw.get("idle_ttl_s", 0.0)))


@dataclass(slots=True)
class ClusterSpec:
    """The ``placements.json`` cluster description.

    Replaces ad-hoc positional server lists: one file names the
    ``host:port`` roster, the replication shape, the ring geometry,
    and tenant quotas, and every tool (``serve``, ``loadgen``,
    ``ring``, ``stats --all``, the loopback harness) reads the same
    one.  On disk::

        {"servers": {"s1": "127.0.0.1:4001", ...},
         "copies": 2, "delta": 8, "vnodes": 128,
         "capacities": {"s1": 2.0},
         "quotas": {"acme": {"max_streams": 4,
                             "max_records_per_s": 2000}}}

    ``capacities`` is the weighted-placement policy: a server's
    capacity multiplies its virtual-node count on the ring (absent =
    1.0), so heterogeneous fleets declare their big boxes once in the
    spec and every process places streams proportionally.
    """

    servers: dict[str, tuple[str, int]]
    copies: int = 2
    delta: int = 8
    vnodes: int = DEFAULT_VNODES
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    capacities: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.servers and self.copies > len(self.servers):
            raise ConfigurationError(
                f"spec names N={self.copies} copies but only "
                f"{len(self.servers)} servers"
            )
        for sid in self.capacities:
            if self.servers and sid not in self.servers:
                raise ConfigurationError(
                    f"capacity for unknown server {sid!r}")

    def config(self) -> ReplicationConfig:
        return ReplicationConfig(total_servers=len(self.servers),
                                 copies=self.copies, delta=self.delta)

    def as_dict(self) -> dict:
        doc = {
            "servers": {sid: f"{host}:{port}"
                        for sid, (host, port) in sorted(self.servers.items())},
            "copies": self.copies,
            "delta": self.delta,
            "vnodes": self.vnodes,
            "quotas": {tenant: quota.as_dict()
                       for tenant, quota in sorted(self.quotas.items())},
        }
        if self.capacities:
            doc["capacities"] = {sid: cap for sid, cap
                                 in sorted(self.capacities.items())}
        return doc

    @classmethod
    def from_dict(cls, raw: Mapping) -> "ClusterSpec":
        servers: dict[str, tuple[str, int]] = {}
        for sid, addr in dict(raw.get("servers", {})).items():
            if isinstance(addr, str):
                host, _, port = addr.rpartition(":")
            else:  # ["host", port] is accepted too
                host, port = addr
            if not host:
                raise ConfigurationError(
                    f"server {sid!r}: expected host:port, got {addr!r}")
            servers[str(sid)] = (host, int(port))
        return cls(
            servers=servers,
            copies=int(raw.get("copies", 2)),
            delta=int(raw.get("delta", 8)),
            vnodes=int(raw.get("vnodes", DEFAULT_VNODES)),
            quotas={str(t): TenantQuota.from_dict(q)
                    for t, q in dict(raw.get("quotas", {})).items()},
            capacities={str(s): float(c)
                        for s, c in dict(raw.get("capacities", {})).items()},
        )

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def load_cluster_spec(path: str) -> ClusterSpec:
    """Read and validate a ``placements.json`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        return ClusterSpec.from_dict(json.load(fh))


class PlacementDirectory:
    """The fleet directory a client computes for itself from a roster.

    Wraps a :class:`ClusterSpec` with the ring built over its roster.
    ``version`` counts roster changes so logs and stats can tell which
    generation a client is placed against; derived directories
    (:meth:`without_server` / :meth:`with_server`) bump it.
    """

    def __init__(self, spec: ClusterSpec, *, version: int = 0):
        if not spec.servers:
            raise ConfigurationError("placement needs a non-empty roster")
        self.spec = spec
        self.version = version
        self.ring = HashRing(spec.servers, vnodes=spec.vnodes,
                             capacities=spec.capacities)

    # -- what a client asks --------------------------------------------

    def addresses(self) -> dict[str, tuple[str, int]]:
        return dict(self.spec.servers)

    def config(self) -> ReplicationConfig:
        return self.spec.config()

    def preference(self, client_id: str) -> list[str]:
        """Fleet in ring-walk order for this client: write set first,
        then spares in the order a switch should try them."""
        return self.ring.preference(client_id)

    def write_set(self, client_id: str) -> list[str]:
        return self.ring.successors(client_id, self.spec.copies)

    def quota_for(self, client_id: str) -> TenantQuota | None:
        quotas = self.spec.quotas
        return quotas.get(tenant_of(client_id)) or quotas.get("*")

    # -- roster changes ------------------------------------------------

    def without_server(self, server_id: str) -> "PlacementDirectory":
        """The directory after removing (quarantining) one server."""
        if server_id not in self.spec.servers:
            raise ConfigurationError(f"unknown server {server_id!r}")
        servers = {sid: addr for sid, addr in self.spec.servers.items()
                   if sid != server_id}
        spec = ClusterSpec(servers=servers, copies=self.spec.copies,
                           delta=self.spec.delta, vnodes=self.spec.vnodes,
                           quotas=dict(self.spec.quotas),
                           capacities={sid: cap for sid, cap
                                       in self.spec.capacities.items()
                                       if sid != server_id})
        return PlacementDirectory(spec, version=self.version + 1)

    def with_server(self, server_id: str,
                    address: tuple[str, int]) -> "PlacementDirectory":
        """The directory after adding one server to the roster."""
        servers = dict(self.spec.servers)
        servers[server_id] = address
        spec = ClusterSpec(servers=servers, copies=self.spec.copies,
                           delta=self.spec.delta, vnodes=self.spec.vnodes,
                           quotas=dict(self.spec.quotas),
                           capacities=dict(self.spec.capacities))
        return PlacementDirectory(spec, version=self.version + 1)

    # -- introspection -------------------------------------------------

    def assignments(self, client_ids: Iterable[str]) -> dict[str, list[str]]:
        """client id → write set, for ``repro ring`` and tests."""
        return {cid: self.write_set(cid) for cid in client_ids}

    def moved_clients(self, other: "PlacementDirectory",
                      client_ids: Iterable[str]) -> list[str]:
        """Clients whose *write set* differs between two directories —
        the movement a rebalance causes (order within the set ignored:
        reordering spares moves no data)."""
        return [cid for cid in client_ids
                if set(self.write_set(cid)) != set(other.write_set(cid))]

    def digest(self) -> str:
        """A stable fingerprint of the directory (roster + geometry).

        Two processes agreeing on this digest compute identical write
        sets for every possible client id.
        """
        doc = {"servers": sorted(self.spec.servers),
               "copies": self.spec.copies,
               "vnodes": self.spec.vnodes}
        if self.spec.capacities:
            # Capacities reshape the ring, so they reshape write sets;
            # omitted when empty so capacity-free digests are unchanged.
            doc["capacities"] = sorted(self.spec.capacities.items())
        return sha256(json.dumps(doc, sort_keys=True).encode()).hexdigest()


def loadgen_client_ids(clients: int, tenants: int = 0,
                       prefix: str = "lg") -> list[str]:
    """The client ids a placed ``loadgen --clients K`` run uses.

    With ``tenants`` > 0, streams round-robin over ``t1..t<T>`` as
    ``"t<j>/<prefix>-<i>"``; otherwise each client is its own tenant
    (``"<prefix>-<i>"``).  Shared by the CLI, the benchmark, and the
    tests so they all place the same ids.
    """
    if tenants > 0:
        return [qualified_client_id(f"t{(i % tenants) + 1}",
                                    f"{prefix}-{i + 1}")
                for i in range(clients)]
    return [f"{prefix}-{i + 1}" for i in range(clients)]


def derive_client_seed(base_seed: int, client_index: int) -> int:
    """Deterministic per-client RNG seed for multi-client runs.

    A stable hash of ``(base_seed, client_index)`` — not ``base_seed +
    i`` (adjacent bases would alias neighbouring clients) and not
    ``hash()`` (salted per process) — so K-client sweeps are
    reproducible run-to-run and across machines.
    """
    return _hash64(f"seed:{base_seed}:{client_index}")

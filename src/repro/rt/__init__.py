"""Real network runtime: the protocol over TCP between OS processes.

Where :mod:`repro.sim` *models* the distributed log (simulated clocks,
LAN contention, failure injection), this package *runs* it:

* :mod:`repro.rt.filestore` — durable file-backed log-server storage:
  an fsync'd append stream replayed through the unchanged in-memory
  store on recovery, plus a persisted append-forest index;
* :mod:`repro.rt.server` — the asyncio log-server daemon speaking the
  Figure 4-1 message set in the binary encoding of
  :mod:`repro.net.codec`;
* :mod:`repro.rt.client` — the asyncio N-of-M replicated-log client
  with epoch-bumped restart;
* :mod:`repro.rt.cluster` — a loopback cluster harness spawning M
  server processes for tests and benchmarks;
* :mod:`repro.rt.loadgen` — an ET1-shaped load driver reporting
  throughput and ForceLog latency percentiles;
* :mod:`repro.rt.placement` — consistent-hash placement of tenant
  streams over the fleet, the ``placements.json`` cluster spec, and
  per-tenant quotas (the sharded multi-tenant layer over the runtime);
* :mod:`repro.rt.faultfs` — injectable storage I/O backends (the
  deterministic fault layer behind ``repro crashsweep``);
* :mod:`repro.rt.chaosproxy` — a fault-injecting TCP proxy (stall,
  latency, loss, one-way partition, byte corruption, and frame-level
  :class:`~repro.rt.chaosproxy.NetFaultPlan` faults targeting exact
  protocol messages) so network faults compose with storage faults.

The core protocol logic (interval merging, quorum sizes, recovery
steps, retry schedule) is imported from :mod:`repro.core` unchanged —
the runtime swaps the simulated transport and storage for real ones.
"""

from .chaosproxy import (
    ChaosProxy,
    NetFaultPlan,
    ProxiedCluster,
    ProxyFleet,
    parse_net_plans,
)
from .client import AsyncReplicatedLog, ServerConnection, async_retry
from .cluster import LoopbackCluster, ServerProcess
from .faultfs import FaultInjector, FaultPlan, PassthroughIO, PowerLoss
from .filestore import FileLogStore, FilePageStore
from .loadgen import (
    LoadReport,
    MultiLoadReport,
    run_loadgen,
    run_loadgen_sync,
    run_multi_loadgen,
    run_multi_loadgen_sync,
)
from .placement import (
    ClusterSpec,
    HashRing,
    PlacementDirectory,
    TenantQuota,
    derive_client_seed,
    load_cluster_spec,
    loadgen_client_ids,
    qualified_client_id,
    tenant_of,
)
from .server import LogServerDaemon, run_server

__all__ = [
    "AsyncReplicatedLog",
    "ChaosProxy",
    "ClusterSpec",
    "FaultInjector",
    "FaultPlan",
    "FileLogStore",
    "FilePageStore",
    "HashRing",
    "LoadReport",
    "LogServerDaemon",
    "LoopbackCluster",
    "MultiLoadReport",
    "NetFaultPlan",
    "PassthroughIO",
    "PlacementDirectory",
    "PowerLoss",
    "ProxiedCluster",
    "ProxyFleet",
    "ServerConnection",
    "ServerProcess",
    "TenantQuota",
    "async_retry",
    "derive_client_seed",
    "load_cluster_spec",
    "loadgen_client_ids",
    "parse_net_plans",
    "qualified_client_id",
    "run_loadgen",
    "run_loadgen_sync",
    "run_multi_loadgen",
    "run_multi_loadgen_sync",
    "run_server",
    "tenant_of",
]

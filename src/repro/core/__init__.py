"""Core replicated-logging algorithm (Section 3 and Appendix I).

Public surface of the algorithm layer:

* :class:`~repro.core.replicated_log.ReplicatedLog` — the client-side
  replicated log (WriteLog / ReadLog / EndOfLog + restart procedure).
* :class:`~repro.core.store.LogServerStore` — one server's durable
  single-copy state (ServerWriteLog / ServerReadLog / IntervalList,
  CopyLog / InstallCopies).
* :class:`~repro.core.epoch.ReplicatedIdGenerator` — Appendix I's
  replicated increasing unique-identifier generator.
* :mod:`~repro.core.availability` — the Section 3.2 closed forms.
"""

from .availability import (
    AvailabilityPoint,
    availability_point,
    figure_3_4_series,
    generator_availability,
    init_availability,
    max_m_for_init_availability,
    read_availability,
    single_server_availability,
    write_availability,
)
from .config import ReplicationConfig
from .epoch import (
    GeneratorStateRepresentative,
    LocalIdGenerator,
    ReplicatedIdGenerator,
    make_generator,
)
from .errors import (
    ConfigurationError,
    CrashedError,
    LogError,
    LSNNotWritten,
    NotEnoughServers,
    NotInitialized,
    ProtocolError,
    RecordNotPresent,
    RecordNotStored,
    ServerUnavailable,
    StaleEpoch,
)
from .intervals import (
    Interval,
    MergedIntervalMap,
    ServerIntervals,
    intervals_from_lsns,
)
from .ports import DirectServerPort, ServerPort
from .records import FIRST_EPOCH, FIRST_LSN, Epoch, LogRecord, LSN, RecordBatch, StoredRecord
from .recovery import (
    RecoveryResult,
    gather_interval_lists,
    gather_interval_lists_with_retry,
    perform_recovery,
)
from .repair import RepairResult, repair_log_copy, under_replicated_lsns
from .retry import RetryPolicy, retry_call
from .replicated_log import ReplicatedLog
from .store import ClientLogState, LogServerStore

__all__ = [
    "AvailabilityPoint",
    "ClientLogState",
    "ConfigurationError",
    "CrashedError",
    "DirectServerPort",
    "Epoch",
    "FIRST_EPOCH",
    "FIRST_LSN",
    "GeneratorStateRepresentative",
    "Interval",
    "LocalIdGenerator",
    "LogError",
    "LogRecord",
    "LogServerStore",
    "LSN",
    "LSNNotWritten",
    "MergedIntervalMap",
    "NotEnoughServers",
    "NotInitialized",
    "ProtocolError",
    "RecordBatch",
    "RecordNotPresent",
    "RecordNotStored",
    "RecoveryResult",
    "RepairResult",
    "ReplicatedIdGenerator",
    "ReplicatedLog",
    "ReplicationConfig",
    "RetryPolicy",
    "ServerIntervals",
    "ServerPort",
    "ServerUnavailable",
    "StaleEpoch",
    "StoredRecord",
    "availability_point",
    "figure_3_4_series",
    "gather_interval_lists",
    "gather_interval_lists_with_retry",
    "generator_availability",
    "init_availability",
    "intervals_from_lsns",
    "make_generator",
    "max_m_for_init_availability",
    "perform_recovery",
    "read_availability",
    "repair_log_copy",
    "retry_call",
    "under_replicated_lsns",
    "single_server_availability",
    "write_availability",
]

"""Capped exponential backoff with deterministic, seeded jitter.

Transient ``NotEnoughServers`` — a force during a churn window, a
client initialization while the init quorum is briefly unreachable —
is survivable: the paper's availability analysis (§3.2) is about how
*often* the quorum exists, and a client that retries through a short
outage sees the availability of the long-run average rather than of
the instant it happened to ask.

:class:`RetryPolicy` computes the delay schedule; all randomness comes
from the caller's ``random.Random`` so retried runs stay bit-for-bit
reproducible, and the jitter stream is only consulted on failure paths
(a failure-free run draws nothing).  :func:`retry_call` applies a
policy to a plain (direct-layer) callable; simulation processes embed
the policy themselves and sleep on the virtual clock.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from .errors import NotEnoughServers

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Delay schedule: ``base * multiplier**attempt`` capped, jittered."""

    base_delay_s: float = 0.02
    cap_delay_s: float = 0.5
    multiplier: float = 2.0
    #: symmetric jitter fraction: a delay ``d`` becomes uniform in
    #: ``[d * (1 - jitter), d * (1 + jitter)]``.
    jitter: float = 0.5
    max_attempts: int = 8

    def __post_init__(self):
        if self.base_delay_s < 0 or self.cap_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= cap_delay_s")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.cap_delay_s,
                  self.base_delay_s * self.multiplier ** attempt)
        if self.jitter and raw > 0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    rng: random.Random,
    retry_on: tuple[type[BaseException], ...] = (NotEnoughServers,),
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    ``sleep`` defaults to ``time.sleep``; tests and Monte-Carlo drivers
    pass a no-op (the direct layer has no clock) and use ``on_retry``
    to mutate the world between attempts — e.g. repair a server, which
    is exactly what makes a *transient* quorum failure transient.
    """
    do_sleep = time.sleep if sleep is None else sleep
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on:
            if attempt >= policy.max_attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt)
            do_sleep(policy.delay(attempt, rng))
            attempt += 1

"""Client initialization (crash recovery) for replicated logs.

Section 3.1.2 and the CopyLog/InstallCopies calls of Section 4.2 define
the procedure a client node runs at restart:

1. gather interval lists from at least ``M − N + 1`` log servers and
   merge them, keeping the highest-epoch entry per LSN;
2. obtain a new epoch number from the replicated identifier generator;
3. copy the most recent ``δ`` log records — the only ones that can have
   been partially written — to ``N`` servers under the new epoch,
   preserving their present flags;
4. append ``δ`` guard records marked *not present* at the next ``δ``
   LSNs, so any partially written record at those LSNs loses every
   future interval-list merge to the higher-epoch guard; and
5. atomically install the staged copies with InstallCopies.

The procedure is restartable: a crash at any point leaves only staged
(uninstalled) records or a fully installed higher epoch, and the next
restart repeats the procedure with a yet-higher epoch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .errors import NotEnoughServers, ServerUnavailable
from .intervals import MergedIntervalMap, ServerIntervals
from .ports import ServerPort
from .records import Epoch, LSN, StoredRecord
from .retry import RetryPolicy, retry_call


@dataclass(frozen=True, slots=True)
class RecoveryResult:
    """Outcome of client initialization."""

    merged: MergedIntervalMap
    epoch: Epoch
    #: the LSN the next WriteLog will assign (merged high + 1, where the
    #: merged map already includes the guard records).
    next_lsn: LSN
    #: servers that hold the installed copies; a good initial write set.
    write_set: tuple[str, ...]
    #: number of records (copies + guards) rewritten during recovery.
    records_copied: int
    #: servers that contributed interval lists.
    init_servers: tuple[str, ...]


def gather_interval_lists(
    ports: dict[str, ServerPort], client_id: str, quorum: int,
) -> list[ServerIntervals]:
    """Collect interval lists from every reachable server.

    Raises :class:`NotEnoughServers` when fewer than ``quorum``
    (``M − N + 1``) servers respond — the condition under which the
    paper says client initialization is unavailable.
    """
    responses: list[ServerIntervals] = []
    for port in ports.values():
        try:
            responses.append(port.interval_list(client_id))
        except ServerUnavailable:
            continue
    if len(responses) < quorum:
        raise NotEnoughServers(
            f"client initialization needs interval lists from {quorum} "
            f"servers; only {len(responses)} responded"
        )
    return responses


def gather_interval_lists_with_retry(
    ports: dict[str, ServerPort],
    client_id: str,
    quorum: int,
    policy: "RetryPolicy | None" = None,
    rng: random.Random | None = None,
    sleep=None,
    on_retry=None,
) -> list[ServerIntervals]:
    """:func:`gather_interval_lists`, retried through transient outages.

    A client restarting *during* churn may find fewer than ``M − N + 1``
    servers up at the instant it asks; retrying with capped backoff
    rides out repair windows instead of failing the whole restart.
    ``on_retry(attempt)`` fires between attempts (tests use it to bring
    servers back; simulations advance their clock in ``sleep``).
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else random.Random(0)
    return retry_call(
        lambda: gather_interval_lists(ports, client_id, quorum),
        policy, rng, retry_on=(NotEnoughServers,),
        sleep=sleep, on_retry=on_retry,
    )


def _read_record_for_copy(
    ports: dict[str, ServerPort],
    client_id: str,
    merged: MergedIntervalMap,
    lsn: LSN,
) -> StoredRecord:
    """Fetch the winning copy of ``lsn`` from some server storing it."""
    last_error: ServerUnavailable | None = None
    for server_id in merged.servers_for(lsn):
        port = ports.get(server_id)
        if port is None:
            continue
        try:
            return port.server_read_log(client_id, lsn)
        except ServerUnavailable as exc:
            last_error = exc
    raise NotEnoughServers(
        f"no reachable server stores LSN {lsn} needed for recovery"
    ) from last_error


def perform_recovery(
    client_id: str,
    ports: dict[str, ServerPort],
    interval_lists: list[ServerIntervals],
    new_epoch: Epoch,
    copies: int,
    delta: int,
    preferred_servers: tuple[str, ...] = (),
) -> RecoveryResult:
    """Run steps 3–5 of the restart procedure and return the new state.

    ``interval_lists`` must already satisfy the init quorum (see
    :func:`gather_interval_lists`).  ``preferred_servers`` biases the
    choice of the ``N`` copy targets, letting a client stay with the
    servers it used before the crash so interval lists stay short.
    """
    merged = MergedIntervalMap.merge(interval_lists)
    high = merged.high_lsn() or 0

    # Records to copy: the most recent δ records that exist, present
    # flag preserved.  (With fewer than δ records in the log, copy all.)
    copy_lsns = [lsn for lsn in range(max(1, high - delta + 1), high + 1)
                 if lsn in merged]
    to_copy = [
        _read_record_for_copy(ports, client_id, merged, lsn)
        for lsn in copy_lsns
    ]
    guards = [
        StoredRecord(lsn=high + i, epoch=new_epoch, present=False, kind="guard")
        for i in range(1, delta + 1)
    ]

    staged_records = [
        StoredRecord(lsn=r.lsn, epoch=new_epoch, present=r.present,
                     data=r.data, kind=r.kind)
        for r in to_copy
    ] + guards

    # Choose N servers, stage everything on each, then install.  A
    # server failing at any point is skipped entirely; records staged
    # there are never installed (the epoch is never reused, so the
    # remnants are inert).
    ordered = list(preferred_servers) + [
        s for s in sorted(ports) if s not in preferred_servers
    ]
    installed_on: list[str] = []
    for server_id in ordered:
        if len(installed_on) >= copies:
            break
        port = ports.get(server_id)
        if port is None:
            continue
        try:
            for record in staged_records:
                port.copy_log(client_id, record.lsn, record.epoch,
                              record.present, record.data, record.kind)
            port.install_copies(client_id, new_epoch)
        except ServerUnavailable:
            continue
        installed_on.append(server_id)

    if len(installed_on) < copies:
        raise NotEnoughServers(
            f"recovery could install copies on only {len(installed_on)} "
            f"servers; {copies} required"
        )

    for record in staged_records:
        for server_id in installed_on:
            merged.note(record.lsn, new_epoch, server_id)

    return RecoveryResult(
        merged=merged,
        epoch=new_epoch,
        next_lsn=(merged.high_lsn() or 0) + 1,
        write_set=tuple(installed_on),
        records_copied=len(staged_records),
        init_servers=tuple(r.server_id for r in interval_lists),
    )

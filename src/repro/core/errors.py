"""Exception hierarchy for the replicated logging library.

Every error raised by the public API derives from :class:`LogError`, so
callers can catch one base class.  The sub-classes mirror the failure
modes named in the paper: reading an LSN that was never written
(Section 3.1), reading a record whose present flag is false
(Section 3.1.2), and being unable to assemble a quorum of servers for a
write or for client initialization (Section 3.2).
"""

from __future__ import annotations


class LogError(Exception):
    """Base class for all errors raised by the replicated log."""


class ConfigurationError(LogError):
    """A replication configuration is invalid (e.g. ``N > M``)."""


class LSNNotWritten(LogError):
    """ReadLog was called with an LSN no WriteLog ever returned.

    The paper specifies that ``ReadLog`` signals an exception when its
    argument "is an LSN that has not been returned by some preceding
    WriteLog operation".
    """

    def __init__(self, lsn: int):
        super().__init__(f"LSN {lsn} has not been written to this log")
        self.lsn = lsn


class RecordNotPresent(LogError):
    """The record exists on servers but its present flag is false.

    Not-present records are written by the client-restart procedure
    (Section 3.1.2); they are placeholders that must never be returned
    as log data.
    """

    def __init__(self, lsn: int):
        super().__init__(f"log record {lsn} is marked not present")
        self.lsn = lsn


class NotEnoughServers(LogError):
    """A quorum could not be assembled.

    Raised when fewer than ``N`` servers accept a write, or fewer than
    ``M - N + 1`` servers respond with interval lists during client
    initialization, or a majority of generator-state representatives is
    unreachable (Appendix I).
    """


class ServerUnavailable(LogError):
    """A specific log server did not respond or refused an operation."""

    def __init__(self, server_id: str, reason: str = "no response"):
        super().__init__(f"log server {server_id!r} unavailable: {reason}")
        self.server_id = server_id
        self.reason = reason


class RecordNotStored(ServerUnavailable):
    """A ServerReadLog asked a server for an LSN it does not store.

    Per Section 3.1.1, "a log server does not respond to ServerReadLog
    requests for records that it does not store"; the client observes
    this as a (per-server) unavailability and must redirect the read.
    """

    def __init__(self, server_id: str, lsn: int):
        super().__init__(server_id, f"does not store LSN {lsn}")
        self.lsn = lsn


class NotInitialized(LogError):
    """An operation was attempted before client initialization.

    The replication algorithm requires the client's cached interval
    information to be rebuilt (Section 3.1.2) after every restart and
    before any WriteLog/ReadLog/EndOfLog.
    """


class StaleEpoch(LogError):
    """A server rejected an operation carrying an out-of-date epoch."""

    def __init__(self, server_id: str, epoch: int, current: int):
        super().__init__(
            f"server {server_id!r} rejected epoch {epoch} (current epoch {current})"
        )
        self.server_id = server_id
        self.epoch = epoch
        self.current = current


class ProtocolError(LogError):
    """A malformed or out-of-contract message reached the transport layer."""


class CrashedError(LogError):
    """An operation was attempted on a crashed node."""


class TenantQuotaExceeded(LogError):
    """A server refused an operation because the tenant is over quota.

    Unlike :class:`ServerUnavailable` this is *not* a per-server
    condition — every server in the fleet enforces the same tenant
    quota, so switching write-set members cannot help.  The client
    backs off on its retry schedule instead (admission back-pressure).
    """

    def __init__(self, server_id: str, reason: str = "over quota"):
        super().__init__(
            f"log server {server_id!r} refused for quota: {reason}"
        )
        self.server_id = server_id
        self.reason = reason


class LogFenced(LogError):
    """A server refused an operation because the stream was fenced.

    Another client installed a higher ownership epoch for this log
    (a linearizable handoff), so this writer's epoch is permanently
    stale.  Like :class:`TenantQuotaExceeded` this is *not* a
    per-server condition — the fence is installed on a quorum that
    intersects every write set, so switching servers cannot help.
    Unlike a quota it is also not transient: the old owner must stop
    writing entirely (the log now belongs to someone else), so the
    client surfaces it as a terminal error instead of retrying.
    """

    def __init__(self, server_id: str, epoch: int = 0,
                 fence_epoch: int = 0, reason: str = ""):
        super().__init__(
            reason or
            f"log server {server_id!r} fenced epoch {epoch}: stream "
            f"ownership was taken over at epoch {fence_epoch}"
        )
        self.server_id = server_id
        self.epoch = epoch
        self.fence_epoch = fence_epoch


class StorageError(LogError):
    """A server's durable storage failed (disk full, IO error).

    The record was *not* made durable; the server stays up and keeps
    serving reads, but refuses further appends until the condition is
    repaired.  Clients treat this like any per-server failure and route
    the write to a spare (Section 3.2's availability argument).
    """

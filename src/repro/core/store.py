"""The single-copy log-server abstraction of Section 3.1.1.

A :class:`LogServerStore` models the durable state of one log server
node.  A server stores, for each client, a sequence of records written
with non-decreasing LSNs and non-decreasing epoch numbers, grouped into
intervals of consecutive LSNs sharing an epoch.  The three abstract
operations of Section 3.1.1 are provided —

* ``server_write_log`` (ServerWriteLog),
* ``server_read_log`` (ServerReadLog), and
* ``interval_list`` (IntervalList),

— plus the two recovery calls the realistic interface of Section 4.2
adds: ``copy_log`` (CopyLog: staged rewrites of possibly-partially-
written records, accepted below the high-water mark) and
``install_copies`` (InstallCopies: atomically install all records
staged under one epoch).

The store is deliberately transport-agnostic: the direct in-process
replicated log drives it straight from function calls, and the
simulated log-server node (:mod:`repro.server`) drives the same store
from network messages, so the Section 3 semantics are implemented
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ProtocolError, RecordNotStored, ServerUnavailable
from .intervals import Interval, ServerIntervals
from .records import Epoch, LSN, StoredRecord


@dataclass(slots=True)
class ClientLogState:
    """Records and staged copies one server holds for one client."""

    client_id: str
    #: records in write order; (lsn, epoch) strictly increasing
    #: lexicographically in (epoch, lsn) and non-decreasing in each
    #: coordinate separately.
    records: list[StoredRecord] = field(default_factory=list)
    #: staged CopyLog records keyed by epoch, installed atomically.
    staged: dict[Epoch, list[StoredRecord]] = field(default_factory=dict)
    #: fast lookup of the highest-epoch copy of each LSN.
    _by_lsn: dict[LSN, StoredRecord] = field(default_factory=dict)
    #: highest LSN ever written, maintained on append (O(1) reads).
    _high_lsn: LSN | None = None
    #: maximal consecutive-LSN/same-epoch runs as ``[epoch, lo, hi]``,
    #: maintained incrementally: append order *is* (epoch, lsn) sorted
    #: order (the write-order rules enforce it), so extending the last
    #: run reproduces exactly what compressing all records would build.
    _runs: list[list] = field(default_factory=list)
    #: Section 5.3 low-water mark: records below it have been dropped;
    #: late retransmissions of them are silently ignored.
    truncated_below: LSN = 0

    @property
    def high_lsn(self) -> LSN | None:
        """Highest LSN ever written here, or None if empty."""
        return self._high_lsn

    @property
    def high_epoch(self) -> Epoch:
        """Highest epoch ever written here (0 if empty)."""
        if not self.records:
            return 0
        return self.records[-1].epoch

    def append(self, record: StoredRecord) -> None:
        """Append one record, enforcing the write-order rules.

        "Successive records on a log server are written with
        non-decreasing LSNs and non-decreasing epoch numbers", and a
        record is uniquely identified by its ⟨LSN, epoch⟩ pair.
        """
        if self.records:
            last = self.records[-1]
            if record.epoch < last.epoch:
                raise ProtocolError(
                    f"epoch went backwards: {last.epoch} -> {record.epoch}"
                )
            if record.epoch == last.epoch and record.lsn <= last.lsn:
                raise ProtocolError(
                    f"LSN did not advance within epoch {record.epoch}: "
                    f"{last.lsn} -> {record.lsn}"
                )
            if record.epoch > last.epoch and record.lsn < self._min_restart_lsn():
                # A new epoch may restart at or above the copy point but
                # never below record 1 of the log; enforced loosely —
                # the client algorithm only ever replays the tail.
                raise ProtocolError(
                    f"new-epoch LSN {record.lsn} below 1"
                )
        self.records.append(record)
        lsn = record.lsn
        cur = self._by_lsn.get(lsn)
        if cur is None or record.epoch > cur.epoch:
            self._by_lsn[lsn] = record
        if self._high_lsn is None or lsn > self._high_lsn:
            self._high_lsn = lsn
        runs = self._runs
        if runs and runs[-1][0] == record.epoch and runs[-1][2] == lsn - 1:
            runs[-1][2] = lsn
        else:
            runs.append([record.epoch, lsn, lsn])

    def _min_restart_lsn(self) -> LSN:
        return 1

    def lookup(self, lsn: LSN) -> StoredRecord | None:
        """The stored record with the given LSN and highest epoch."""
        return self._by_lsn.get(lsn)

    def intervals(self) -> tuple[Interval, ...]:
        """The consecutive-LSN / same-epoch runs stored here."""
        return tuple(Interval(e, lo, hi) for e, lo, hi in self._runs)

    def truncate_below(self, low_water: LSN) -> int:
        """Drop every record with ``lsn < low_water``; return the count.

        Section 5.3 log space management: the client has declared that
        records below its low-water mark are needed by no recovery
        class, so the server may reclaim their space.  Interval runs
        are clipped at the mark — truncation deliberately decouples
        space reclamation from the strict write ordering (the retained
        suffix still satisfies every write-order rule, because a
        subsequence of a legally ordered sequence is legally ordered).
        """
        if low_water <= self.truncated_below:
            return 0
        before = len(self.records)
        self.records = [r for r in self.records if r.lsn >= low_water]
        dropped = before - len(self.records)
        if dropped:
            for lsn in [k for k in self._by_lsn if k < low_water]:
                del self._by_lsn[lsn]
            clipped: list[list] = []
            for epoch, lo, hi in self._runs:
                if hi < low_water:
                    continue
                clipped.append([epoch, max(lo, low_water), hi])
            self._runs = clipped
            if not self.records:
                self._high_lsn = None
        self.truncated_below = low_water
        return dropped

    def stage_copy(self, record: StoredRecord) -> None:
        """Stage a CopyLog record for later atomic installation."""
        self.staged.setdefault(record.epoch, []).append(record)

    def install(self, epoch: Epoch) -> int:
        """Install all records staged under ``epoch``; return the count.

        Installation appends the staged records in LSN order.  CopyLog
        records may have LSNs at or below the server's high-water mark;
        their (strictly higher) epoch keeps the append ordering rules
        satisfied.  Installing an epoch with nothing staged is a no-op
        (the call is idempotent after a duplicate message).
        """
        staged = self.staged.pop(epoch, [])
        for record in sorted(staged, key=lambda r: r.lsn):
            self.append(record)
        return len(staged)


class LogServerStore:
    """Durable state of one log server node, holding many clients' logs.

    ``available`` models whole-node up/down status for the availability
    experiments (Section 3.2): an unavailable server raises
    :class:`ServerUnavailable` from every operation.  Durable contents
    survive unavailability — the paper's log servers keep log data on
    disk and NVRAM, so a crash loses no acknowledged record.
    """

    def __init__(self, server_id: str):
        self.server_id = server_id
        self.available = True
        self._clients: dict[str, ClientLogState] = {}
        # simple op counters for the load-assignment experiments
        self.write_ops = 0
        self.read_ops = 0

    # -- failure injection --------------------------------------------

    def crash(self) -> None:
        """Mark the server down.  Durable state is retained."""
        self.available = False

    def restart(self) -> None:
        """Bring the server back up with its durable state intact."""
        self.available = True

    def _check_up(self) -> None:
        if not self.available:
            raise ServerUnavailable(self.server_id, "server is down")

    # -- state access --------------------------------------------------

    def client_state(self, client_id: str) -> ClientLogState:
        state = self._clients.get(client_id)
        if state is None:
            state = ClientLogState(client_id)
            self._clients[client_id] = state
        return state

    def known_clients(self) -> list[str]:
        return sorted(self._clients)

    # -- the Section 3.1.1 operations -----------------------------------

    def server_write_log(
        self,
        client_id: str,
        lsn: LSN,
        epoch: Epoch,
        present: bool,
        data: bytes = b"",
        kind: str = "data",
    ) -> None:
        """ServerWriteLog: append one record for ``client_id``.

        Duplicate delivery of the exact record already at the tail is
        tolerated silently (the asynchronous protocol of Section 4.2
        may retransmit); any other regression is a protocol error.
        """
        self._check_up()
        state = self.client_state(client_id)
        if lsn < state.truncated_below:
            return  # late retransmission of a reclaimed record
        existing = state.lookup(lsn)
        if existing is not None and existing.epoch == epoch:
            if existing.present == present and existing.data == data:
                return  # duplicate retransmission
            raise ProtocolError(
                f"conflicting rewrite of ⟨{lsn},{epoch}⟩ on {self.server_id}"
            )
        record = StoredRecord(
            lsn=lsn, epoch=epoch, present=present,
            data=data if present else b"", kind=kind,
        )
        state.append(record)
        self.write_ops += 1

    def server_write_record(self, client_id: str,
                            record: StoredRecord) -> bool:
        """ServerWriteLog taking a ready :class:`StoredRecord`.

        Stored records are immutable and already enforce the
        present/data invariant, so the simulated server keeps the
        caller's object instead of rebuilding an identical one — this
        is the per-record hot path of the target-load experiment.

        Returns ``True`` when the record was newly stored, ``False``
        when it was dropped as a duplicate retransmission (or a late
        retransmission of a reclaimed record) — so the durable layer
        can decide whether to append without a second lookup.
        """
        self._check_up()
        state = self._clients.get(client_id)
        if state is None:
            state = self.client_state(client_id)
        lsn = record.lsn
        epoch = record.epoch
        if lsn < state.truncated_below:
            return False  # late retransmission of a reclaimed record
        existing = state._by_lsn.get(lsn)
        if existing is not None and existing.epoch == epoch:
            if existing.present == record.present \
                    and existing.data == record.data:
                return False  # duplicate retransmission
            raise ProtocolError(
                f"conflicting rewrite of ⟨{lsn},{epoch}⟩ "
                f"on {self.server_id}"
            )
        # ClientLogState.append inlined: the call and its second
        # ``_by_lsn`` probe (``existing`` is already in hand) are
        # measurable at one invocation per stored record.
        records = state.records
        if records:
            last = records[-1]
            if epoch < last.epoch:
                raise ProtocolError(
                    f"epoch went backwards: {last.epoch} -> {epoch}"
                )
            if epoch == last.epoch and lsn <= last.lsn:
                raise ProtocolError(
                    f"LSN did not advance within epoch {epoch}: "
                    f"{last.lsn} -> {lsn}"
                )
            if epoch > last.epoch and lsn < state._min_restart_lsn():
                raise ProtocolError(f"new-epoch LSN {lsn} below 1")
        records.append(record)
        if existing is None or epoch > existing.epoch:
            state._by_lsn[lsn] = record
        if state._high_lsn is None or lsn > state._high_lsn:
            state._high_lsn = lsn
        runs = state._runs
        if runs and runs[-1][0] == epoch and runs[-1][2] == lsn - 1:
            runs[-1][2] = lsn
        else:
            runs.append([epoch, lsn, lsn])
        self.write_ops += 1
        return True

    def server_read_log(self, client_id: str, lsn: LSN) -> StoredRecord:
        """ServerReadLog: highest-epoch record with the requested LSN.

        "A log server does not respond to ServerReadLog requests for
        records that it does not store, but it must respond to requests
        for records that are stored, regardless of whether they are
        marked present or not."  Not storing the record is modelled as
        :class:`RecordNotStored` (a per-server unavailability, not a
        log-level error).
        """
        self._check_up()
        record = self.client_state(client_id).lookup(lsn)
        if record is None:
            raise RecordNotStored(self.server_id, lsn)
        self.read_ops += 1
        return record

    def interval_list(self, client_id: str) -> ServerIntervals:
        """IntervalList: the epoch/lo/hi triples for ``client_id``."""
        self._check_up()
        state = self.client_state(client_id)
        return ServerIntervals(self.server_id, state.intervals())

    # -- the Section 4.2 recovery calls ---------------------------------

    def copy_log(
        self,
        client_id: str,
        lsn: LSN,
        epoch: Epoch,
        present: bool,
        data: bytes = b"",
        kind: str = "data",
    ) -> None:
        """CopyLog: stage a record rewrite under a new epoch.

        "Log servers accept CopyLog calls for records with LSNs that
        are lower than the highest log sequence number written to the
        log server."  The record stays invisible to reads and interval
        lists until InstallCopies.
        """
        self._check_up()
        state = self.client_state(client_id)
        if epoch <= state.high_epoch:
            raise ProtocolError(
                f"CopyLog epoch {epoch} not above server high epoch "
                f"{state.high_epoch}"
            )
        record = StoredRecord(
            lsn=lsn, epoch=epoch, present=present,
            data=data if present else b"", kind=kind,
        )
        state.stage_copy(record)

    def install_copies(self, client_id: str, epoch: Epoch) -> int:
        """InstallCopies: atomically install all records staged at ``epoch``."""
        self._check_up()
        installed = self.client_state(client_id).install(epoch)
        self.write_ops += installed
        return installed

    # -- Section 5.3: log space management --------------------------------

    def truncate_below(self, client_id: str, low_water: LSN) -> int:
        """Drop a client's records below its declared low-water mark."""
        self._check_up()
        return self.client_state(client_id).truncate_below(low_water)

    def record_count(self) -> int:
        """Total records held across all clients (the daemon RSS proxy)."""
        return sum(len(s.records) for s in self._clients.values())

    # -- diagnostics -----------------------------------------------------

    def dump_table(self, client_id: str) -> list[tuple[LSN, Epoch, str]]:
        """Render a client's records like the paper's figure tables.

        Returns ``(LSN, Epoch, 'yes'|'no')`` rows in write order —
        directly comparable with Figures 3-1, 3-2 and 3-3.
        """
        state = self.client_state(client_id)
        return [
            (r.lsn, r.epoch, "yes" if r.present else "no")
            for r in state.records
        ]

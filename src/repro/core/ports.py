"""Transport-independent access to log servers.

The replication algorithm of Section 3 is independent of how requests
reach a server: the paper runs it over specialized LAN protocols, the
tests run it over direct function calls, and the simulator runs it over
a modelled network.  :class:`ServerPort` is the small interface the
algorithm needs; :class:`DirectServerPort` binds it straight to an
in-process :class:`~repro.core.store.LogServerStore`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .intervals import ServerIntervals
from .records import Epoch, LSN, StoredRecord
from .store import LogServerStore


@runtime_checkable
class ServerPort(Protocol):
    """What the client-side algorithm requires of one log server.

    Implementations raise :class:`~repro.core.errors.ServerUnavailable`
    (or its subclass ``RecordNotStored``) when the server cannot serve
    the request; the algorithm treats both as per-server failures and
    moves to another server.
    """

    @property
    def server_id(self) -> str: ...

    def server_write_log(
        self, client_id: str, lsn: LSN, epoch: Epoch, present: bool,
        data: bytes = b"", kind: str = "data",
    ) -> None: ...

    def server_read_log(self, client_id: str, lsn: LSN) -> StoredRecord: ...

    def interval_list(self, client_id: str) -> ServerIntervals: ...

    def copy_log(
        self, client_id: str, lsn: LSN, epoch: Epoch, present: bool,
        data: bytes = b"", kind: str = "data",
    ) -> None: ...

    def install_copies(self, client_id: str, epoch: Epoch) -> int: ...


class DirectServerPort:
    """A port that invokes a local :class:`LogServerStore` directly.

    Used by unit and property tests, and by the closed-form availability
    experiments where network timing is irrelevant.
    """

    def __init__(self, store: LogServerStore):
        self._store = store

    @property
    def server_id(self) -> str:
        return self._store.server_id

    @property
    def store(self) -> LogServerStore:
        """The underlying store (exposed for failure injection in tests)."""
        return self._store

    def server_write_log(
        self, client_id: str, lsn: LSN, epoch: Epoch, present: bool,
        data: bytes = b"", kind: str = "data",
    ) -> None:
        self._store.server_write_log(client_id, lsn, epoch, present, data, kind)

    def server_read_log(self, client_id: str, lsn: LSN) -> StoredRecord:
        return self._store.server_read_log(client_id, lsn)

    def interval_list(self, client_id: str) -> ServerIntervals:
        return self._store.interval_list(client_id)

    def copy_log(
        self, client_id: str, lsn: LSN, epoch: Epoch, present: bool,
        data: bytes = b"", kind: str = "data",
    ) -> None:
        self._store.copy_log(client_id, lsn, epoch, present, data, kind)

    def install_copies(self, client_id: str, epoch: Epoch) -> int:
        return self._store.install_copies(client_id, epoch)

"""The replicated-log abstract type of Section 3.1.

A :class:`ReplicatedLog` is "an append only sequence of records"
identified by increasing Log Sequence Numbers, used by exactly one
transaction-processing node.  It offers the three operations the paper
defines —

* :meth:`write` (WriteLog): append a record, returning its LSN;
* :meth:`read` (ReadLog): fetch the record with a given LSN, signalling
  an exception for LSNs never returned by WriteLog; and
* :meth:`end_of_log` (EndOfLog): the LSN of the most recent record —

plus the iteration helpers a recovery manager needs in practice.

Replication follows Section 3.1.2: every record is written to ``N`` of
the ``M`` servers, reads use the client's cached merged-interval map to
contact a single server, and :meth:`initialize` performs the restart
procedure that makes interrupted writes atomic (see
:mod:`repro.core.recovery`).
"""

from __future__ import annotations

from typing import Iterator, Protocol

from .config import ReplicationConfig
from .errors import (
    LSNNotWritten,
    NotEnoughServers,
    NotInitialized,
    RecordNotPresent,
    ServerUnavailable,
    StaleEpoch,
)
from .intervals import MergedIntervalMap
from .ports import ServerPort
from .records import Epoch, LogRecord, LSN
from .recovery import gather_interval_lists, perform_recovery


class EpochSource(Protocol):
    """Anything that can issue strictly increasing epoch numbers.

    Normally a :class:`~repro.core.epoch.ReplicatedIdGenerator`; tests
    may use :class:`~repro.core.epoch.LocalIdGenerator`.
    """

    def new_id(self) -> int: ...


class ReplicatedLog:
    """Client-side replicated log over ``M`` servers, ``N`` copies each."""

    def __init__(
        self,
        client_id: str,
        ports: dict[str, ServerPort],
        config: ReplicationConfig,
        epoch_source: EpochSource,
    ):
        if len(ports) != config.total_servers:
            raise NotEnoughServers(
                f"configuration names M={config.total_servers} servers "
                f"but {len(ports)} ports were supplied"
            )
        self.client_id = client_id
        self.config = config
        self._ports = dict(ports)
        self._epoch_source = epoch_source
        # Volatile, rebuilt by initialize():
        self._merged: MergedIntervalMap | None = None
        self._epoch: Epoch = 0
        self._next_lsn: LSN = 1
        self._write_set: list[str] = []
        # Bookkeeping for experiments:
        self.writes_performed = 0
        self.reads_performed = 0
        self.recoveries_performed = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._merged is not None

    def initialize(self) -> None:
        """Run the client restart procedure of Section 3.1.2.

        Gathers interval lists from at least ``M − N + 1`` servers,
        merges them, obtains a fresh epoch, copies the last ``δ``
        records under that epoch, and appends ``δ`` not-present guard
        records.  After this returns, every earlier WriteLog appears to
        have happened atomically: a partially written record either
        reached the merged list (and is now on ``N`` servers) or is
        permanently masked by a higher-epoch guard.
        """
        lists = gather_interval_lists(
            self._ports, self.client_id, self.config.init_quorum
        )
        pre_merge = MergedIntervalMap.merge(lists)
        new_epoch = self._epoch_source.new_id()
        if new_epoch <= pre_merge.highest_epoch():
            raise StaleEpoch("generator", new_epoch, pre_merge.highest_epoch())
        result = perform_recovery(
            self.client_id,
            self._ports,
            lists,
            new_epoch,
            copies=self.config.copies,
            delta=self.config.delta,
            preferred_servers=tuple(self._write_set),
        )
        self._merged = result.merged
        self._epoch = result.epoch
        self._next_lsn = result.next_lsn
        self._write_set = list(result.write_set)
        self.recoveries_performed += 1

    def crash(self) -> None:
        """Simulate a client crash: all volatile state is lost.

        The caller must :meth:`initialize` again before using the log.
        """
        self._merged = None
        self._epoch = 0
        self._next_lsn = 1
        # _write_set intentionally survives only as a *preference* for
        # the next initialize(); a real client would rediscover servers,
        # and keeping the hint models "clients should attempt to perform
        # consecutive writes to the same servers".

    def _require_init(self) -> MergedIntervalMap:
        if self._merged is None:
            raise NotInitialized(
                "the replicated log must be initialized before use"
            )
        return self._merged

    # -- the three Section 3.1 operations ---------------------------------

    def write(self, data: bytes, kind: str = "data") -> LSN:
        """WriteLog: append ``data``; return its LSN.

        The record is sent to ``N`` servers.  If a server in the write
        set fails, the client switches to another server ("a client can
        switch servers when necessary"), creating a new interval there.
        If fewer than ``N`` servers in total accept the record the
        write is incomplete: :class:`NotEnoughServers` is raised and
        the log must be re-initialized before further use, exactly as a
        real client node would restart.
        """
        merged = self._require_init()
        lsn = self._next_lsn
        succeeded: list[str] = []
        candidates = list(self._write_set) + [
            s for s in sorted(self._ports) if s not in self._write_set
        ]
        for server_id in candidates:
            if len(succeeded) >= self.config.copies:
                break
            try:
                self._ports[server_id].server_write_log(
                    self.client_id, lsn, self._epoch, True, data, kind
                )
            except ServerUnavailable:
                continue
            succeeded.append(server_id)
        if len(succeeded) < self.config.copies:
            self._merged = None  # force re-initialization
            raise NotEnoughServers(
                f"WriteLog reached only {len(succeeded)} of "
                f"{self.config.copies} servers for LSN {lsn}"
            )
        self._write_set = succeeded
        for server_id in succeeded:
            merged.note(lsn, self._epoch, server_id)
        self._next_lsn = lsn + 1
        self.writes_performed += 1
        return lsn

    def read(self, lsn: LSN) -> LogRecord:
        """ReadLog: return the record written with LSN ``lsn``.

        Signals :class:`LSNNotWritten` for LSNs beyond the end of the
        log (or below 1) and :class:`RecordNotPresent` for guard
        records, which no WriteLog ever returned.  Uses the cached
        merged map to contact a single server; if that server has
        failed, the other servers holding the record are tried.
        """
        merged = self._require_init()
        entry = merged.entry(lsn)
        if entry is None:
            raise LSNNotWritten(lsn)
        last_error: ServerUnavailable | None = None
        for server_id in entry.servers:
            try:
                stored = self._ports[server_id].server_read_log(
                    self.client_id, lsn
                )
            except ServerUnavailable as exc:
                last_error = exc
                continue
            self.reads_performed += 1
            if not stored.present:
                raise RecordNotPresent(lsn)
            return stored.to_log_record()
        raise NotEnoughServers(
            f"no server holding LSN {lsn} is reachable"
        ) from last_error

    def end_of_log(self) -> LSN:
        """EndOfLog: "the high value in the merged interval list".

        Returns 0 for an empty log.  Note the paper's definition: guard
        records written during recovery count, so the value can exceed
        :meth:`last_present_lsn`.
        """
        merged = self._require_init()
        return merged.high_lsn() or 0

    # -- convenience operations -------------------------------------------

    def last_present_lsn(self) -> LSN | None:
        """Highest LSN whose record is readable (skips guards)."""
        merged = self._require_init()
        for lsn in range(self.end_of_log(), 0, -1):
            if lsn not in merged:
                continue
            try:
                self.read(lsn)
            except RecordNotPresent:
                continue
            return lsn
        return None

    def iter_backward(self, from_lsn: LSN | None = None) -> Iterator[LogRecord]:
        """Yield present records from ``from_lsn`` (default: end) down to 1.

        Not-present records and merge gaps are skipped — this is the
        scan order a recovery manager uses to undo and redo work.
        """
        merged = self._require_init()
        start = from_lsn if from_lsn is not None else self.end_of_log()
        for lsn in range(start, 0, -1):
            if lsn not in merged:
                continue
            try:
                yield self.read(lsn)
            except RecordNotPresent:
                continue

    def iter_forward(
        self, from_lsn: LSN = 1, to_lsn: LSN | None = None
    ) -> Iterator[LogRecord]:
        """Yield present records in LSN order over ``[from_lsn, to_lsn]``."""
        merged = self._require_init()
        end = to_lsn if to_lsn is not None else self.end_of_log()
        for lsn in range(from_lsn, end + 1):
            if lsn not in merged:
                continue
            try:
                yield self.read(lsn)
            except RecordNotPresent:
                continue

    @property
    def current_epoch(self) -> Epoch:
        return self._epoch

    @property
    def write_set(self) -> tuple[str, ...]:
        """The ``N`` servers currently receiving this client's records."""
        return tuple(self._write_set)

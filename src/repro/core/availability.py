"""Closed-form availability analysis of replicated logs (Section 3.2).

With ``M`` log servers failing independently, each unavailable with
probability ``p``:

* **WriteLog** is available when ``M − N`` or fewer servers are down::

      A_write = Σ_{i=0}^{M−N} C(M, i) p^i (1−p)^{M−i}

* **Client initialization** is available when ``N − 1`` or fewer are
  down (``M − N + 1`` interval lists are required)::

      A_init = Σ_{i=0}^{N−1} C(M, i) p^i (1−p)^{M−i}

* **ReadLog** of a particular record, stored on ``N`` servers, is
  available unless all ``N`` are down::

      A_read = 1 − p^N

Appendix I gives the availability of the replicated identifier
generator with ``N`` state representatives: a majority must be up::

      A_gen = Σ_{i=0}^{⌊(N−1)/2⌋} C(N, i) p^i (1−p)^{N−i}

These functions regenerate Figure 3-4 and the paper's call-out numbers
(0.95, ~0.98, ~0.999).  :func:`figure_3_4_series` produces the exact
series plotted in the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb


def _binomial_at_most(k: int, n: int, p: float) -> float:
    """P[at most k of n independent events], each with probability p."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    return sum(comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(k + 1))


def write_availability(m: int, n: int, p: float) -> float:
    """Probability a replicated log accepts WriteLog operations.

    Available iff at most ``M − N`` servers are simultaneously down.
    """
    _validate(m, n, p)
    return _binomial_at_most(m - n, m, p)


def init_availability(m: int, n: int, p: float) -> float:
    """Probability client initialization can gather its quorum.

    Available iff at most ``N − 1`` servers are down, i.e. at least
    ``M − N + 1`` respond with interval lists.
    """
    _validate(m, n, p)
    return _binomial_at_most(n - 1, m, p)


def read_availability(n: int, p: float) -> float:
    """Probability a particular record (stored on N servers) is readable."""
    if n < 1:
        raise ValueError("N must be at least 1")
    _check_p(p)
    return 1.0 - p**n


def generator_availability(n_reps: int, p: float) -> float:
    """Appendix I: availability of the replicated identifier generator.

    A NewID needs ``⌈(N+1)/2⌉`` representatives, so the generator is
    available iff ``⌊(N−1)/2⌋`` or fewer are down.
    """
    if n_reps < 1:
        raise ValueError("the generator needs at least one representative")
    _check_p(p)
    return _binomial_at_most((n_reps - 1) // 2, n_reps, p)


def single_server_availability(p: float) -> float:
    """The paper's reference point: one server with mirrored disks.

    Every operation (ReadLog, WriteLog, client init) is available
    exactly when that server is up: ``1 − p``.
    """
    _check_p(p)
    return 1.0 - p


@dataclass(frozen=True, slots=True)
class AvailabilityPoint:
    """One (M, N) configuration's availabilities at failure prob ``p``."""

    m: int
    n: int
    p: float
    write: float
    init: float
    read: float

    @property
    def label(self) -> str:
        return f"M={self.m} N={self.n}"


def availability_point(m: int, n: int, p: float) -> AvailabilityPoint:
    """All three availabilities for one configuration."""
    return AvailabilityPoint(
        m=m, n=n, p=p,
        write=write_availability(m, n, p),
        init=init_availability(m, n, p),
        read=read_availability(n, p),
    )


def figure_3_4_series(
    p: float = 0.05, n_values: tuple[int, ...] = (2, 3), max_m: int = 8,
) -> dict[int, list[AvailabilityPoint]]:
    """The series of Figure 3-4: availability vs M for each N.

    The paper plots WriteLog and client-initialization availability for
    dual-copy (N=2) and triple-copy (N=3) logs as M grows, with
    individual servers available with probability 0.95 (p = 0.05).
    """
    return {
        n: [availability_point(m, n, p) for m in range(n, max_m + 1)]
        for n in n_values
    }


def max_m_for_init_availability(
    n: int, p: float, minimum: float, max_m: int = 100
) -> int:
    """Largest M keeping init availability at or above ``minimum``.

    Reproduces the paper's observation that "with dual copy replicated
    logs, 0.95 or better availability for client initialization would
    be achieved using up to M = 7 log servers" at p = 0.05.
    """
    best = 0
    for m in range(n, max_m + 1):
        if init_availability(m, n, p) >= minimum:
            best = m
        else:
            break
    if best == 0:
        raise ValueError(
            f"no M >= N={n} meets init availability {minimum} at p={p}"
        )
    return best


def _validate(m: int, n: int, p: float) -> None:
    if n < 1 or m < n:
        raise ValueError(f"need M >= N >= 1, got M={m} N={n}")
    _check_p(p)


def _check_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")

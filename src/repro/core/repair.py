"""Repairing a replicated log after losing one copy (Section 5.3).

Among the recovery operations a space-management strategy must serve
is "the repair of a log when one redundant copy is lost": a log
server's disk dies, a replacement (empty) server joins, and the
client's records that lived on the dead server must be re-replicated
so every record is again on ``N`` servers.

:func:`repair_log_copy` performs the repair for one client: it merges
interval lists from the surviving servers, finds every LSN with fewer
than ``N`` surviving copies, reads each from a holder, and replays
them onto the target in ``(epoch, LSN)`` order — which satisfies the
server's non-decreasing write discipline, so the target's store ends
up exactly as if it had received the records originally.

The repair is read-only on the survivors and append-only on the
target, so it can run concurrently with normal logging to *other*
servers; like client restart, it is driven by the (single) client or
by an operator acting for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import NotEnoughServers, ServerUnavailable
from .intervals import MergedIntervalMap
from .ports import ServerPort
from .records import StoredRecord
from .recovery import gather_interval_lists


@dataclass(frozen=True, slots=True)
class RepairResult:
    """Outcome of one log-copy repair."""

    client_id: str
    target_server: str
    records_copied: int
    bytes_copied: int
    lsns_repaired: tuple[int, ...]


def under_replicated_lsns(
    merged: MergedIntervalMap, copies: int
) -> list[int]:
    """LSNs whose winning version is on fewer than ``copies`` servers."""
    return [
        lsn for lsn in merged.lsns()
        if len(merged.servers_for(lsn)) < copies
    ]


def repair_log_copy(
    client_id: str,
    survivor_ports: dict[str, ServerPort],
    target_port: ServerPort,
    copies: int,
) -> RepairResult:
    """Re-replicate a client's under-replicated records onto ``target``.

    ``survivor_ports`` are the remaining servers (the lost one is
    simply absent).  Records already on ``copies`` survivors are left
    alone.  Raises :class:`NotEnoughServers` if some record has no
    reachable holder at all — that is data loss, which N-fold
    replication exists to make improbable.
    """
    reports = gather_interval_lists(survivor_ports, client_id, quorum=1)
    merged = MergedIntervalMap.merge(reports)
    needy = under_replicated_lsns(merged, copies)

    to_copy: list[StoredRecord] = []
    for lsn in needy:
        record = _read_from_any(survivor_ports, merged, client_id, lsn)
        to_copy.append(record)

    # Replay in (epoch, LSN) order: epochs non-decreasing, and within
    # an epoch LSNs increase — the append discipline of Section 3.1.1.
    to_copy.sort(key=lambda r: (r.epoch, r.lsn))
    copied_bytes = 0
    for record in to_copy:
        target_port.server_write_log(
            client_id, record.lsn, record.epoch,
            record.present, record.data, record.kind,
        )
        copied_bytes += len(record.data)

    return RepairResult(
        client_id=client_id,
        target_server=target_port.server_id,
        records_copied=len(to_copy),
        bytes_copied=copied_bytes,
        lsns_repaired=tuple(r.lsn for r in to_copy),
    )


def _read_from_any(
    ports: dict[str, ServerPort],
    merged: MergedIntervalMap,
    client_id: str,
    lsn: int,
) -> StoredRecord:
    last: ServerUnavailable | None = None
    for server_id in merged.servers_for(lsn):
        port = ports.get(server_id)
        if port is None:
            continue
        try:
            return port.server_read_log(client_id, lsn)
        except ServerUnavailable as exc:
            last = exc
    raise NotEnoughServers(
        f"no surviving server stores LSN {lsn}; the log has lost data"
    ) from last

"""Value types for log records and their on-server representation.

The paper distinguishes two views of a log record:

* the *replicated-log* view seen by the transaction system — a
  ``⟨LSN, data⟩`` pair (Section 3.1); and
* the *server* view — data plus an epoch number and a boolean present
  flag, uniquely identified by ``⟨LSN, epoch⟩`` (Section 3.1.1).

Both are modelled here as small frozen dataclasses.  LSNs and epoch
numbers are plain ``int``; type aliases document intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Log Sequence Number — increasing integers assigned by WriteLog.
LSN = int

#: Epoch number — non-decreasing integers; all records written between
#: two client restarts carry the same epoch (Section 3.1.1).
Epoch = int

#: First LSN a fresh replicated log assigns.
FIRST_LSN: LSN = 1

#: First epoch a fresh client uses.
FIRST_EPOCH: Epoch = 1


@dataclass(frozen=True, slots=True)
class LogRecord:
    """A record as seen by users of the replicated log.

    ``data`` is opaque to the logging layer; its content depends on the
    client's recovery algorithm.  ``kind`` is an optional label used by
    the recovery manager (redo/undo/commit/checkpoint) and by the
    workload generators; the log itself never interprets it.
    """

    lsn: LSN
    data: bytes
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.lsn < FIRST_LSN:
            raise ValueError(f"LSN must be >= {FIRST_LSN}, got {self.lsn}")

    @property
    def size(self) -> int:
        """Payload size in bytes (used by packing and capacity models)."""
        return len(self.data)


@dataclass(slots=True)
class StoredRecord:
    """A record as stored by a log server (Section 3.1.1).

    A stored record is uniquely identified by its ``(lsn, epoch)`` pair.
    When ``present`` is false no log data need be stored; such records
    are written by the client-restart procedure to mask partially
    written records.  Not frozen: a frozen dataclass pays an
    ``object.__setattr__`` call per field at construction, and stored
    records are minted once per log record on the simulation hot path.
    Treat instances as immutable regardless.
    """

    lsn: LSN
    epoch: Epoch
    present: bool = True
    data: bytes = b""
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.lsn < FIRST_LSN:
            raise ValueError(f"LSN must be >= {FIRST_LSN}, got {self.lsn}")
        if self.epoch < FIRST_EPOCH:
            raise ValueError(f"epoch must be >= {FIRST_EPOCH}, got {self.epoch}")
        if not self.present and self.data:
            raise ValueError("a not-present record must not carry data")

    @property
    def key(self) -> tuple[LSN, Epoch]:
        """The unique ``(lsn, epoch)`` identity of this stored record."""
        return (self.lsn, self.epoch)

    def to_log_record(self) -> LogRecord:
        """Project the replicated-log view (drops epoch and present flag)."""
        return LogRecord(lsn=self.lsn, data=self.data, kind=self.kind)


def trusted_stored_record(lsn: LSN, epoch: Epoch, present: bool,
                          data: bytes, kind: str) -> StoredRecord:
    """Build a :class:`StoredRecord` bypassing ``__init__`` validation.

    For callers whose fields are *already* validated — the wire decoder
    (after the CRC check and explicit field checks) and the client's
    own LSN assignment.  Dataclass construction plus ``__post_init__``
    is measurable at one call per record on the runtime hot path.
    """
    record = StoredRecord.__new__(StoredRecord)
    record.lsn = lsn
    record.epoch = epoch
    record.present = present
    record.data = data
    record.kind = kind
    return record


@dataclass(slots=True)
class RecordBatch:
    """A group of consecutive records travelling in one message.

    Section 4.2 requires the client interface to "transfer multiple log
    records in each network message".  A batch carries records with
    consecutive LSNs and a single epoch, which is what the WriteLog /
    ForceLog / CopyLog messages of Figure 4-1 transmit.
    """

    epoch: Epoch
    records: list[StoredRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._check_consecutive()

    def _check_consecutive(self) -> None:
        for prev, cur in zip(self.records, self.records[1:]):
            if cur.lsn != prev.lsn + 1:
                raise ValueError(
                    f"batch LSNs must be consecutive: {prev.lsn} then {cur.lsn}"
                )
        for rec in self.records:
            if rec.epoch != self.epoch:
                raise ValueError(
                    f"record epoch {rec.epoch} differs from batch epoch {self.epoch}"
                )

    @property
    def low_lsn(self) -> LSN:
        if not self.records:
            raise ValueError("empty batch has no low LSN")
        return self.records[0].lsn

    @property
    def high_lsn(self) -> LSN:
        if not self.records:
            raise ValueError("empty batch has no high LSN")
        return self.records[-1].lsn

    @property
    def byte_size(self) -> int:
        """Total payload bytes in the batch."""
        return sum(len(r.data) for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

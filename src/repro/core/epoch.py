"""Replicated increasing unique-identifier generator (Appendix I).

Epoch numbers must be "higher than any other epoch number used during
the previous operation of this client" (Section 3.1.2).  Appendix I
replicates the generator state on ``N`` *generator-state
representatives*, each holding one integer in non-volatile storage.

``NewID`` reads the state from ``⌈(N+1)/2⌉`` representatives, then
writes a value higher than any read to ``⌈N/2⌉`` representatives.  The
read set of any invocation intersects the write set of every earlier
invocation (read + write quorum exceeds N), so identifiers strictly
increase even across client crashes.  A crash between the read and the
write can only *skip* values, never repeat one.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from .errors import NotEnoughServers, ServerUnavailable
from .retry import RetryPolicy, retry_call


@dataclass(slots=True)
class GeneratorStateRepresentative:
    """One replica of the generator state: an integer in NV storage.

    ``Read`` and ``Write`` are atomic at an individual representative
    (Appendix I).  ``available`` supports the availability experiments;
    the stored value survives unavailability, as NV storage does.
    """

    rep_id: str
    value: int = 0
    available: bool = True
    #: write history, kept so tests can verify the append-only variant
    #: mentioned in the appendix ("append-only storage may be used").
    history: list[int] = field(default_factory=list)

    def read(self) -> int:
        if not self.available:
            raise ServerUnavailable(self.rep_id, "representative is down")
        return self.value

    def write(self, value: int) -> None:
        if not self.available:
            raise ServerUnavailable(self.rep_id, "representative is down")
        # Values written by successive NewIDs are increasing, but a
        # duplicate or delayed message could replay an older value;
        # never move the durable state backwards.
        if value > self.value:
            self.value = value
            self.history.append(value)

    def crash(self) -> None:
        self.available = False

    def restart(self) -> None:
        self.available = True


def read_quorum_size(n_reps: int) -> int:
    """``⌈(N+1)/2⌉`` — representatives a NewID must read."""
    return math.ceil((n_reps + 1) / 2)


def write_quorum_size(n_reps: int) -> int:
    """``⌈N/2⌉`` — representatives a NewID must write."""
    return math.ceil(n_reps / 2)


class ReplicatedIdGenerator:
    """The ``NewID`` abstraction of Appendix I.

    Identifiers are integers compared with ``<`` and ``==``.  Only a
    single client process may generate identifiers at one time — the
    same single-client restriction the replicated log itself exploits.
    """

    def __init__(self, representatives: list[GeneratorStateRepresentative]):
        if not representatives:
            raise NotEnoughServers("a generator needs at least one representative")
        self._reps = list(representatives)

    @property
    def representatives(self) -> list[GeneratorStateRepresentative]:
        return list(self._reps)

    @property
    def n_reps(self) -> int:
        return len(self._reps)

    def new_id(self) -> int:
        """Issue the next identifier, strictly above all previous ones.

        Raises :class:`NotEnoughServers` if a read or write quorum of
        representatives cannot be assembled.
        """
        values = []
        writable: list[GeneratorStateRepresentative] = []
        for rep in self._reps:
            try:
                values.append(rep.read())
            except ServerUnavailable:
                continue
            writable.append(rep)
        if len(values) < read_quorum_size(self.n_reps):
            raise NotEnoughServers(
                f"read quorum needs {read_quorum_size(self.n_reps)} "
                f"representatives, only {len(values)} available"
            )
        new_value = max(values) + 1
        written = 0
        need = write_quorum_size(self.n_reps)
        for rep in writable:
            try:
                rep.write(new_value)
            except ServerUnavailable:
                continue
            written += 1
            if written >= need:
                break
        if written < need:
            raise NotEnoughServers(
                f"write quorum needs {need} representatives, wrote {written}"
            )
        return new_value

    def new_id_with_retry(
        self,
        policy: "RetryPolicy | None" = None,
        rng: random.Random | None = None,
        sleep=None,
        on_retry=None,
    ) -> int:
        """:meth:`new_id`, retried through transient quorum loss.

        A representative down for repair fails one NewID attempt, not
        the client restart that needs it; the retry schedule and jitter
        are deterministic given ``rng``.
        """
        policy = policy if policy is not None else RetryPolicy()
        rng = rng if rng is not None else random.Random(0)
        return retry_call(self.new_id, policy, rng,
                          retry_on=(NotEnoughServers,),
                          sleep=sleep, on_retry=on_retry)


def make_generator(n_reps: int, prefix: str = "rep") -> ReplicatedIdGenerator:
    """Convenience constructor: ``n_reps`` fresh representatives."""
    reps = [GeneratorStateRepresentative(f"{prefix}-{i}") for i in range(n_reps)]
    return ReplicatedIdGenerator(reps)


class LocalIdGenerator:
    """A trivial single-node generator for tests and examples.

    Provides the same ``new_id`` interface without replication; the
    direct-mode tests that do not exercise generator availability use
    this to keep scenarios small.
    """

    def __init__(self, start: int = 0):
        self._value = start

    def new_id(self) -> int:
        self._value += 1
        return self._value

"""Replication configuration: the (M, N, δ) parameters of the paper.

* ``M`` — total number of log servers available to a client.
* ``N`` — copies written per record ("each client's log record being
  stored on N of the M log servers", Section 3.1).  Practical values
  are two or three (Section 3.2).
* ``δ`` (delta) — the bound on records that may be partially written
  when a client crashes.  With the strictly synchronous algorithm of
  Section 3.1.2 this is 1; the grouped asynchronous interface of
  Section 4.2 allows a larger, bounded δ ("the client must limit the
  number of records contained in unacknowledged WriteLog and ForceLog
  messages to ensure that no more than δ log records are partially
  written").
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ReplicationConfig:
    """Parameters of a replicated log instance."""

    total_servers: int  # M
    copies: int = 2  # N
    delta: int = 1  # max partially-written records
    write_retries: int = 3  # ForceLog retries before switching servers

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ConfigurationError("N (copies) must be at least 1")
        if self.total_servers < self.copies:
            raise ConfigurationError(
                f"M ({self.total_servers}) must be >= N ({self.copies})"
            )
        if self.delta < 1:
            raise ConfigurationError("delta must be at least 1")
        if self.write_retries < 0:
            raise ConfigurationError("write_retries must be non-negative")

    @property
    def m(self) -> int:
        """Alias matching the paper's notation."""
        return self.total_servers

    @property
    def n(self) -> int:
        """Alias matching the paper's notation."""
        return self.copies

    @property
    def init_quorum(self) -> int:
        """Servers whose interval lists client initialization needs.

        ``M − N + 1`` responses guarantee the merged list names at least
        one server storing each fully written record (Section 3.1.2).
        """
        return self.total_servers - self.copies + 1

    @property
    def write_quorum(self) -> int:
        """Servers a WriteLog must reach: exactly N."""
        return self.copies

    def max_tolerated_failures_for_write(self) -> int:
        """Servers that may be down with WriteLog still available."""
        return self.total_servers - self.copies

    def max_tolerated_failures_for_init(self) -> int:
        """Servers that may be down with client init still available."""
        return self.copies - 1

"""Interval lists and the interval-merge rule of Section 3.1.2.

Log servers group the records they store for a client into *intervals*:
maximal runs of consecutive LSNs sharing one epoch number
(Section 3.1.1).  An interval is described by three integers — the
epoch, the low LSN, and the high LSN — which is exactly what the
``IntervalList`` server operation returns.

Client initialization gathers interval lists from at least ``M − N + 1``
servers and merges them, keeping, for each LSN, only the entries with
the highest epoch number.  The merged list answers ``EndOfLog`` (its
highest LSN) and routes every subsequent ``ReadLog`` to a server known
to store the record.

The merged map is held as *segments* — disjoint, sorted runs of LSNs
sharing one (epoch, servers) value — not as a per-LSN dictionary, so
merging interval lists costs O(k log k) in the number of intervals
rather than O(total LSNs), exactly the economy the paper's interval
representation exists to provide ("storing one interval requires space
for three integers").  Per-LSN queries answer from a binary search;
the per-LSN semantics (highest epoch wins; equal epochs accumulate
read sites in arrival order) are unchanged.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from operator import itemgetter
from typing import Iterable, Iterator

from .records import Epoch, LSN

# segment field offsets: [lo, hi, epoch, servers]
_seg_lo = itemgetter(0)
_seg_hi = itemgetter(1)


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A maximal run of consecutive LSNs in one epoch on one server.

    The ordering (epoch, lo, hi) makes lists of intervals sort into the
    order servers write them, since servers write non-decreasing LSNs
    and non-decreasing epochs.
    """

    epoch: Epoch
    lo: LSN
    hi: LSN

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lo {self.lo} > hi {self.hi}")
        if self.lo < 1 or self.epoch < 1:
            raise ValueError("interval LSNs and epochs start at 1")

    def __contains__(self, lsn: LSN) -> bool:
        return self.lo <= lsn <= self.hi

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def lsns(self) -> range:
        """Iterate the LSNs covered by this interval."""
        return range(self.lo, self.hi + 1)

    def extend(self) -> "Interval":
        """Return this interval grown by one record at the high end."""
        return Interval(self.epoch, self.lo, self.hi + 1)


@dataclass(frozen=True, slots=True)
class ServerIntervals:
    """The interval list one server reports, tagged with its identity."""

    server_id: str
    intervals: tuple[Interval, ...]

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)


@dataclass(frozen=True, slots=True)
class MergedEntry:
    """One LSN's winning entry after an interval merge.

    ``servers`` lists every server holding the record *at the winning
    epoch*; ReadLog may be directed at any one of them (the algorithm
    needs only one because replicas of a given ⟨LSN, epoch⟩ are
    identical).
    """

    lsn: LSN
    epoch: Epoch
    servers: tuple[str, ...]


class MergedIntervalMap:
    """The client's cached read-routing table (Section 3.1.2).

    Built from the interval lists of the servers contacted during
    client initialization, then updated incrementally as WriteLog sends
    new records.  For each LSN it records the winning (highest) epoch
    and the servers storing that version.

    Internally a sorted list of disjoint segments ``[lo, hi, epoch,
    servers]``; adjacent segments with equal (epoch, servers) are kept
    coalesced, so the segment count tracks the number of distinct
    interval runs, not the number of LSNs.
    """

    __slots__ = ("_segs",)

    def __init__(self) -> None:
        #: disjoint segments sorted by lo: [lo, hi, epoch, servers]
        self._segs: list[list] = []

    # -- construction -------------------------------------------------

    @classmethod
    def merge(cls, reports: Iterable[ServerIntervals]) -> "MergedIntervalMap":
        """Merge server interval lists, keeping highest-epoch entries.

        "In merging the interval lists, only the entries with the
        highest epoch number for a particular LSN are kept."  Whole
        intervals are merged by boundary arithmetic — O(k log k) in the
        number of intervals, independent of how many LSNs they span.
        """
        merged = cls()
        for report in reports:
            server_id = report.server_id
            for interval in report:
                merged._note_range(
                    interval.lo, interval.hi, interval.epoch, server_id
                )
        return merged

    def note(self, lsn: LSN, epoch: Epoch, server_id: str) -> None:
        """Record that ``server_id`` stores ``⟨lsn, epoch⟩``.

        A higher epoch replaces a lower one; an equal epoch adds the
        server as an additional read site; a lower epoch is ignored.
        """
        segs = self._segs
        if not segs:
            segs.append([lsn, lsn, epoch, (server_id,)])
            return
        last = segs[-1]
        if lsn > last[1]:
            # appending past the end — the first replica's WriteLog
            # steady state.
            if lsn == last[1] + 1 and epoch == last[2] \
                    and last[3] == (server_id,):
                last[1] = lsn
            else:
                segs.append([lsn, lsn, epoch, (server_id,)])
            return
        if lsn == last[0] and epoch == last[2] and server_id not in last[3]:
            # adding a read site at the head of the tail segment — the
            # second replica's steady state: each of its notes lands on
            # the first LSN the earlier replicas already cover.
            grown = last[3] + (server_id,)
            if len(segs) >= 2:
                prev = segs[-2]
                if prev[1] == lsn - 1 and prev[2] == epoch \
                        and prev[3] == grown:
                    prev[1] = lsn
                    if last[1] == lsn:
                        segs.pop()
                    else:
                        last[0] = lsn + 1
                    return
            if last[1] == lsn:
                last[3] = grown
            else:
                segs[-1:] = [[lsn, lsn, epoch, grown],
                             [lsn + 1, last[1], epoch, last[3]]]
            return
        self._note_range(lsn, lsn, epoch, server_id)

    def note_range(self, lo: LSN, hi: LSN, epoch: Epoch,
                   server_id: str) -> None:
        """Record that ``server_id`` stores ``⟨lsn, epoch⟩`` for every
        LSN in ``[lo, hi]`` — one boundary-arithmetic merge instead of
        ``hi - lo + 1`` :meth:`note` calls (the post-force bookkeeping
        of a whole acknowledged window).
        """
        self._note_range(lo, hi, epoch, server_id)

    def _note_range(self, lo: LSN, hi: LSN, epoch: Epoch,
                    server_id: str) -> None:
        """Apply the per-LSN merge rule to every LSN in ``[lo, hi]``.

        Equivalent to calling :meth:`note` once per LSN, but performed
        segment-wise: overlapping segments are split at the boundaries,
        the rule (higher epoch replaces, equal epoch appends the
        server, lower epoch is ignored) is applied to each overlap
        piece, and uncovered sub-ranges become new segments.
        """
        segs = self._segs
        new_servers = (server_id,)
        if not segs or lo > segs[-1][1]:
            last = segs[-1] if segs else None
            if last is not None and lo == last[1] + 1 \
                    and last[2] == epoch and last[3] == new_servers:
                last[1] = hi
            else:
                segs.append([lo, hi, epoch, new_servers])
            return
        n = len(segs)
        # first segment whose hi reaches lo (segments are disjoint and
        # sorted, so both lo and hi columns are sorted).
        i = bisect_left(segs, lo, key=_seg_hi)
        out: list[list] = []
        cur = lo
        j = i
        while j < n and segs[j][0] <= hi:
            s_lo, s_hi, s_ep, s_srv = segs[j]
            if cur < s_lo:
                # a gap the new interval covers alone
                out.append([cur, s_lo - 1, epoch, new_servers])
                cur = s_lo
            elif s_lo < cur:
                # untouched left piece of a segment straddling lo
                out.append([s_lo, cur - 1, s_ep, s_srv])
            ov_hi = s_hi if s_hi < hi else hi
            if epoch > s_ep:
                out.append([cur, ov_hi, epoch, new_servers])
            elif epoch == s_ep and server_id not in s_srv:
                out.append([cur, ov_hi, s_ep, s_srv + new_servers])
            else:
                out.append([cur, ov_hi, s_ep, s_srv])
            if s_hi > hi:
                # untouched right piece of a segment straddling hi
                out.append([hi + 1, s_hi, s_ep, s_srv])
            cur = ov_hi + 1
            j += 1
        if cur <= hi:
            out.append([cur, hi, epoch, new_servers])
        # splice back, pulling in both neighbours so coalescing can
        # cross the window boundary.
        splice_lo, splice_hi = i, j
        if i > 0:
            splice_lo = i - 1
            out.insert(0, segs[i - 1])
        if j < n:
            out.append(segs[j])
            splice_hi = j + 1
        coalesced: list[list] = []
        for seg in out:
            if coalesced:
                prev = coalesced[-1]
                if prev[1] + 1 == seg[0] and prev[2] == seg[2] \
                        and prev[3] == seg[3]:
                    prev[1] = seg[1]
                    continue
            coalesced.append(seg)
        segs[splice_lo:splice_hi] = coalesced

    def forget_server(self, server_id: str) -> None:
        """Drop a failed server from every entry's read-site set.

        Entries whose only known copy was on that server keep an empty
        server tuple; reads of those LSNs raise until the client
        re-initializes against a fresh quorum.
        """
        segs = self._segs
        for seg in segs:
            if server_id in seg[3]:
                seg[3] = tuple(s for s in seg[3] if s != server_id)
        # removal can make neighbours equal; re-coalesce in place.
        coalesced: list[list] = []
        for seg in segs:
            if coalesced:
                prev = coalesced[-1]
                if prev[1] + 1 == seg[0] and prev[2] == seg[2] \
                        and prev[3] == seg[3]:
                    prev[1] = seg[1]
                    continue
            coalesced.append(seg)
        self._segs = coalesced

    def prune_below(self, low_water: LSN) -> int:
        """Forget every entry below ``low_water`` (Section 5.3).

        After a TruncateLog round the records below the truncation
        point "will never be read again"; the client's read-routing
        table drops them so its size tracks the live log, not its
        history.  Returns the number of LSNs pruned.
        """
        segs = self._segs
        pruned = 0
        kept: list[list] = []
        for seg in segs:
            if seg[1] < low_water:
                pruned += seg[1] - seg[0] + 1
                continue
            if seg[0] < low_water:
                pruned += low_water - seg[0]
                seg[0] = low_water
            kept.append(seg)
        self._segs = kept
        return pruned

    # -- queries ------------------------------------------------------

    def _seg_for(self, lsn: LSN) -> list | None:
        segs = self._segs
        i = bisect_right(segs, lsn, key=_seg_lo) - 1
        if i >= 0:
            seg = segs[i]
            if seg[1] >= lsn:
                return seg
        return None

    def __contains__(self, lsn: LSN) -> bool:
        return self._seg_for(lsn) is not None

    def __len__(self) -> int:
        return sum(seg[1] - seg[0] + 1 for seg in self._segs)

    def entry(self, lsn: LSN) -> MergedEntry | None:
        seg = self._seg_for(lsn)
        if seg is None:
            return None
        return MergedEntry(lsn, seg[2], seg[3])

    def servers_for(self, lsn: LSN) -> tuple[str, ...]:
        """Servers known to hold the winning version of ``lsn``."""
        seg = self._seg_for(lsn)
        return seg[3] if seg is not None else ()

    def epoch_of(self, lsn: LSN) -> Epoch | None:
        seg = self._seg_for(lsn)
        return seg[2] if seg is not None else None

    def high_lsn(self) -> LSN | None:
        """The highest merged LSN — the EndOfLog answer, or None if empty."""
        segs = self._segs
        return segs[-1][1] if segs else None

    def highest_epoch(self) -> Epoch:
        """The highest epoch appearing anywhere in the merged map."""
        segs = self._segs
        if not segs:
            return 0
        return max(seg[2] for seg in segs)

    def lsns(self) -> list[LSN]:
        """All merged LSNs in increasing order."""
        out: list[LSN] = []
        for seg in self._segs:
            out.extend(range(seg[0], seg[1] + 1))
        return out

    def gaps(self) -> list[LSN]:
        """LSNs missing between 1 and ``high_lsn`` (diagnostic aid).

        A correctly maintained replicated log has no gaps; recovery
        tests use this to assert the invariant.
        """
        segs = self._segs
        if not segs:
            return []
        out: list[LSN] = []
        expected = 1
        for seg in segs:
            if seg[0] > expected:
                out.extend(range(expected, seg[0]))
            expected = seg[1] + 1
        return out

    def segments(self) -> list[tuple[LSN, LSN, Epoch, tuple[str, ...]]]:
        """The coalesced ``(lo, hi, epoch, servers)`` runs (diagnostic)."""
        return [tuple(seg) for seg in self._segs]


def intervals_from_lsns(
    pairs: Iterable[tuple[LSN, Epoch]]
) -> tuple[Interval, ...]:
    """Compress ``(lsn, epoch)`` pairs into maximal intervals.

    Input pairs may arrive in any order; the result is sorted by
    (epoch, lo).  Used by the server store to build IntervalList
    responses and by tests to state expectations compactly.
    """
    ordered = sorted(set(pairs), key=lambda p: (p[1], p[0]))
    out: list[Interval] = []
    for lsn, epoch in ordered:
        if out and out[-1].epoch == epoch and out[-1].hi == lsn - 1:
            out[-1] = out[-1].extend()
        else:
            out.append(Interval(epoch, lsn, lsn))
    return tuple(out)

"""Interval lists and the interval-merge rule of Section 3.1.2.

Log servers group the records they store for a client into *intervals*:
maximal runs of consecutive LSNs sharing one epoch number
(Section 3.1.1).  An interval is described by three integers — the
epoch, the low LSN, and the high LSN — which is exactly what the
``IntervalList`` server operation returns.

Client initialization gathers interval lists from at least ``M − N + 1``
servers and merges them, keeping, for each LSN, only the entries with
the highest epoch number.  The merged list answers ``EndOfLog`` (its
highest LSN) and routes every subsequent ``ReadLog`` to a server known
to store the record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .records import Epoch, LSN


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A maximal run of consecutive LSNs in one epoch on one server.

    The ordering (epoch, lo, hi) makes lists of intervals sort into the
    order servers write them, since servers write non-decreasing LSNs
    and non-decreasing epochs.
    """

    epoch: Epoch
    lo: LSN
    hi: LSN

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lo {self.lo} > hi {self.hi}")
        if self.lo < 1 or self.epoch < 1:
            raise ValueError("interval LSNs and epochs start at 1")

    def __contains__(self, lsn: LSN) -> bool:
        return self.lo <= lsn <= self.hi

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def lsns(self) -> range:
        """Iterate the LSNs covered by this interval."""
        return range(self.lo, self.hi + 1)

    def extend(self) -> "Interval":
        """Return this interval grown by one record at the high end."""
        return Interval(self.epoch, self.lo, self.hi + 1)


@dataclass(frozen=True, slots=True)
class ServerIntervals:
    """The interval list one server reports, tagged with its identity."""

    server_id: str
    intervals: tuple[Interval, ...]

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)


@dataclass(frozen=True, slots=True)
class MergedEntry:
    """One LSN's winning entry after an interval merge.

    ``servers`` lists every server holding the record *at the winning
    epoch*; ReadLog may be directed at any one of them (the algorithm
    needs only one because replicas of a given ⟨LSN, epoch⟩ are
    identical).
    """

    lsn: LSN
    epoch: Epoch
    servers: tuple[str, ...]


class MergedIntervalMap:
    """The client's cached read-routing table (Section 3.1.2).

    Built from the interval lists of the servers contacted during
    client initialization, then updated incrementally as WriteLog sends
    new records.  For each LSN it records the winning (highest) epoch
    and the servers storing that version.
    """

    def __init__(self) -> None:
        self._entries: dict[LSN, MergedEntry] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def merge(cls, reports: Iterable[ServerIntervals]) -> "MergedIntervalMap":
        """Merge server interval lists, keeping highest-epoch entries.

        "In merging the interval lists, only the entries with the
        highest epoch number for a particular LSN are kept."
        """
        merged = cls()
        for report in reports:
            for interval in report:
                for lsn in interval.lsns():
                    merged.note(lsn, interval.epoch, report.server_id)
        return merged

    def note(self, lsn: LSN, epoch: Epoch, server_id: str) -> None:
        """Record that ``server_id`` stores ``⟨lsn, epoch⟩``.

        A higher epoch replaces a lower one; an equal epoch adds the
        server as an additional read site; a lower epoch is ignored.
        """
        cur = self._entries.get(lsn)
        if cur is None or epoch > cur.epoch:
            self._entries[lsn] = MergedEntry(lsn, epoch, (server_id,))
        elif epoch == cur.epoch and server_id not in cur.servers:
            self._entries[lsn] = MergedEntry(
                lsn, epoch, cur.servers + (server_id,)
            )

    def forget_server(self, server_id: str) -> None:
        """Drop a failed server from every entry's read-site set.

        Entries whose only known copy was on that server keep an empty
        server tuple; reads of those LSNs raise until the client
        re-initializes against a fresh quorum.
        """
        for lsn, entry in list(self._entries.items()):
            if server_id in entry.servers:
                remaining = tuple(s for s in entry.servers if s != server_id)
                self._entries[lsn] = MergedEntry(lsn, entry.epoch, remaining)

    # -- queries ------------------------------------------------------

    def __contains__(self, lsn: LSN) -> bool:
        return lsn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, lsn: LSN) -> MergedEntry | None:
        return self._entries.get(lsn)

    def servers_for(self, lsn: LSN) -> tuple[str, ...]:
        """Servers known to hold the winning version of ``lsn``."""
        entry = self._entries.get(lsn)
        return entry.servers if entry is not None else ()

    def epoch_of(self, lsn: LSN) -> Epoch | None:
        entry = self._entries.get(lsn)
        return entry.epoch if entry is not None else None

    def high_lsn(self) -> LSN | None:
        """The highest merged LSN — the EndOfLog answer, or None if empty."""
        if not self._entries:
            return None
        return max(self._entries)

    def highest_epoch(self) -> Epoch:
        """The highest epoch appearing anywhere in the merged map."""
        if not self._entries:
            return 0
        return max(e.epoch for e in self._entries.values())

    def lsns(self) -> list[LSN]:
        """All merged LSNs in increasing order."""
        return sorted(self._entries)

    def gaps(self) -> list[LSN]:
        """LSNs missing between 1 and ``high_lsn`` (diagnostic aid).

        A correctly maintained replicated log has no gaps; recovery
        tests use this to assert the invariant.
        """
        high = self.high_lsn()
        if high is None:
            return []
        return [lsn for lsn in range(1, high + 1) if lsn not in self._entries]


def intervals_from_lsns(
    pairs: Iterable[tuple[LSN, Epoch]]
) -> tuple[Interval, ...]:
    """Compress ``(lsn, epoch)`` pairs into maximal intervals.

    Input pairs may arrive in any order; the result is sorted by
    (epoch, lo).  Used by the server store to build IntervalList
    responses and by tests to state expectations compactly.
    """
    ordered = sorted(set(pairs), key=lambda p: (p[1], p[0]))
    out: list[Interval] = []
    for lsn, epoch in ordered:
        if out and out[-1].epoch == epoch and out[-1].hi == lsn - 1:
            out[-1] = out[-1].extend()
        else:
            out.append(Interval(epoch, lsn, lsn))
    return tuple(out)

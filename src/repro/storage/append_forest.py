"""The append-forest index of Section 4.3 (Figures 4-2 and 4-3).

An append-forest provides logarithmic read access to records held in
append-only storage, with constant-time appends, "providing that keys
are appended to the tree in strictly increasing order".

Structure
---------

A *complete* append forest with ``2^n − 1`` nodes is accessed like a
binary search tree with two properties:

1. the key of the root of any subtree is greater than all its
   descendants' keys; and
2. all keys in the right subtree of any node are greater than all keys
   in the left subtree.

An *incomplete* forest is a sequence of complete trees of strictly
decreasing height, except that the two smallest trees may share a
height.  Every node carries a *forest pointer* linking the root of each
tree to the root of the next tree to its left, so all nodes are
reachable from the most recently appended node (the forest root).

Append rule (reproduces the Figure 4-3 narration exactly): if the two
smallest trees have equal height ``h``, the new key becomes the root of
a height ``h+1`` tree with those trees as its left and right sons;
otherwise the new key starts a height-0 tree.  Either way its forest
pointer names the root of the next tree to the left.  All pointers
refer to already-written nodes, so the structure lives happily on
write-once storage.

Keys here are *ranges* of LSNs: "each node of the append forest will
contain pointers to each log record in its range", so one page-sized
node indexes many records.  The degenerate range ``lo == hi`` gives the
single-key forest of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .pages import AppendOnlyPageStore, PageAddress


class AppendForestError(Exception):
    """Keys out of order or a malformed forest."""


@dataclass(frozen=True, slots=True)
class ForestNode:
    """One immutable node, stored as one page.

    ``lo``/``hi`` delimit the node's own key range; ``entries`` maps
    each key in the range to its record locator (e.g. a disk offset).
    ``tree_min`` caches the smallest key in the subtree rooted here so
    searches can pick the right tree in one comparison.  ``height`` is
    the height of the complete tree rooted here.
    """

    lo: int
    hi: int
    entries: tuple[Any, ...]
    left: PageAddress | None
    right: PageAddress | None
    forest: PageAddress | None
    tree_min: int
    height: int

    def covers(self, key: int) -> bool:
        return self.lo <= key <= self.hi

    def locate(self, key: int) -> Any:
        if not self.covers(key):
            raise AppendForestError(f"key {key} outside node [{self.lo},{self.hi}]")
        return self.entries[key - self.lo]


@dataclass(slots=True)
class _TreeSummary:
    """Root bookkeeping kept in volatile memory (rebuildable by scan)."""

    address: PageAddress
    height: int


class AppendForest:
    """An append-forest over an append-only page store.

    The only volatile state is the stack of current tree roots, which
    :meth:`rebuild_from_store` reconstructs from the pages alone — the
    recovery path a server takes after a crash when the forest lives on
    write-once storage.
    """

    def __init__(self, store: AppendOnlyPageStore | None = None):
        self.store = store if store is not None else AppendOnlyPageStore("forest")
        self._roots: list[_TreeSummary] = []
        self._count = 0
        self._high_key: int | None = None
        # instrumentation for the complexity experiments
        self.last_search_hops = 0

    # -- append ------------------------------------------------------------

    def append(self, lo: int, hi: int, entries: tuple[Any, ...] | list[Any]) -> PageAddress:
        """Append a node covering keys ``[lo, hi]``.

        ``entries[i]`` is the locator for key ``lo + i``.  Keys must be
        strictly above every previously appended key.
        """
        if lo > hi:
            raise AppendForestError(f"empty key range [{lo}, {hi}]")
        if len(entries) != hi - lo + 1:
            raise AppendForestError(
                f"range [{lo},{hi}] needs {hi - lo + 1} entries, got {len(entries)}"
            )
        if self._high_key is not None and lo <= self._high_key:
            raise AppendForestError(
                f"keys must increase: high key is {self._high_key}, got lo={lo}"
            )

        if (
            len(self._roots) >= 2
            and self._roots[-1].height == self._roots[-2].height
        ):
            # Merge the two smallest trees under the new node.
            right = self._roots.pop()
            left = self._roots.pop()
            left_node = self.store.read(left.address)
            forest = self._roots[-1].address if self._roots else None
            node = ForestNode(
                lo=lo, hi=hi, entries=tuple(entries),
                left=left.address, right=right.address, forest=forest,
                tree_min=left_node.tree_min, height=left.height + 1,
            )
        else:
            forest = self._roots[-1].address if self._roots else None
            node = ForestNode(
                lo=lo, hi=hi, entries=tuple(entries),
                left=None, right=None, forest=forest,
                tree_min=lo, height=0,
            )
        address = self.store.append(node)
        self._roots.append(_TreeSummary(address, node.height))
        self._count += 1
        self._high_key = hi
        return address

    def append_key(self, key: int, entry: Any) -> PageAddress:
        """Append a single-key node (the paper's figures use these)."""
        return self.append(key, key, (entry,))

    # -- search --------------------------------------------------------------

    @property
    def root_address(self) -> PageAddress | None:
        """Address of the forest root: the most recently appended node."""
        return self._roots[-1].address if self._roots else None

    def search(self, key: int) -> Any:
        """Locate ``key``; raises :class:`KeyError` if never appended.

        "Searches in an append forest follow a chain of forest pointers
        from the root until a tree (potentially) containing the desired
        key is found.  Binary tree search is then used on the tree."
        """
        self.last_search_hops = 0
        address = self.root_address
        # Follow forest pointers leftward to the tree covering `key`.
        while address is not None:
            node = self.store.read(address)
            self.last_search_hops += 1
            if key > node.hi:
                # Keys increase rightward; a key above this tree's max
                # but below the forest root's max fell in a gap: absent.
                raise KeyError(key)
            if key >= node.tree_min:
                return self._search_tree(address, key)
            address = node.forest
        raise KeyError(key)

    def _search_tree(self, address: PageAddress, key: int) -> Any:
        node = self.store.read(address)
        while True:
            if node.covers(key):
                return node.locate(key)
            if node.left is None:
                raise KeyError(key)
            left = self.store.read(node.left)
            self.last_search_hops += 1
            if key <= left.hi:
                node = left
            else:
                if node.right is None:
                    raise KeyError(key)
                node = self.store.read(node.right)
        # unreachable

    def __contains__(self, key: int) -> bool:
        try:
            self.search(key)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        """Number of nodes (not keys) in the forest."""
        return self._count

    @property
    def high_key(self) -> int | None:
        return self._high_key

    # -- introspection & invariants -----------------------------------------

    def tree_heights(self) -> list[int]:
        """Heights of the current trees, oldest first."""
        return [r.height for r in self._roots]

    def forest_chain(self) -> list[PageAddress]:
        """Addresses of tree roots reachable by forest pointers, newest first."""
        chain: list[PageAddress] = []
        address = self.root_address
        while address is not None:
            chain.append(address)
            address = self.store.read(address).forest
        return chain

    def check_invariants(self) -> None:
        """Verify the two BST properties and the height discipline.

        Raises :class:`AppendForestError` on any violation; used by the
        property-based tests.
        """
        heights = self.tree_heights()
        for older, newer in zip(heights, heights[1:]):
            if newer > older:
                raise AppendForestError(f"heights not non-increasing: {heights}")
        for older, newer in zip(heights, heights[2:]):
            if older == newer:
                raise AppendForestError(
                    f"more than two trees share a height: {heights}"
                )
        prev_min = None
        for summary in reversed(self._roots):  # newest (largest keys) first
            node = self.store.read(summary.address)
            self._check_subtree(summary.address)
            if prev_min is not None and node.hi >= prev_min:
                raise AppendForestError("tree key spans overlap")
            prev_min = node.tree_min

    def _check_subtree(self, address: PageAddress) -> tuple[int, int, int]:
        """Return (min_key, max_key, height); raise on violations."""
        node = self.store.read(address)
        if node.left is None and node.right is None:
            if node.height != 0:
                raise AppendForestError("leaf with nonzero height")
            if node.tree_min != node.lo:
                raise AppendForestError("leaf tree_min mismatch")
            return node.lo, node.hi, 0
        if node.left is None or node.right is None:
            raise AppendForestError("trees are complete: one child missing")
        lmin, lmax, lh = self._check_subtree(node.left)
        rmin, rmax, rh = self._check_subtree(node.right)
        if lh != rh:
            raise AppendForestError("subtree heights differ")
        if node.height != lh + 1:
            raise AppendForestError("height not child height + 1")
        if not (lmax < rmin and rmax < node.lo):
            raise AppendForestError(
                "BST order violated: left < right < root required"
            )
        if node.tree_min != lmin:
            raise AppendForestError("tree_min not the left subtree minimum")
        return lmin, node.hi, node.height

    def keys(self) -> Iterator[int]:
        """All keys in increasing order (walks trees oldest-first)."""
        for summary in self._roots:
            yield from self._tree_keys(summary.address)

    def _tree_keys(self, address: PageAddress) -> Iterator[int]:
        node = self.store.read(address)
        if node.left is not None:
            yield from self._tree_keys(node.left)
        if node.right is not None:
            yield from self._tree_keys(node.right)
        yield from range(node.lo, node.hi + 1)

    # -- recovery -------------------------------------------------------------

    def rebuild_from_store(self) -> None:
        """Reconstruct the volatile root stack by scanning the pages.

        The last page is the forest root; the root stack is the forest
        chain reversed.  ``count`` and ``high_key`` come from the scan.
        A torn final page (truncated tail) simply yields the forest as
        of the previous append — the durability contract of append-only
        structures.
        """
        self._roots = []
        self._count = len(self.store)
        if self._count == 0:
            self._high_key = None
            return
        chain = []
        address: PageAddress | None = len(self.store) - 1
        high = self.store.read(address).hi
        while address is not None:
            node = self.store.read(address)
            chain.append(_TreeSummary(address, node.height))
            address = node.forest
        self._roots = list(reversed(chain))
        self._high_key = high

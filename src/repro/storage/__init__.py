"""Storage substrate: disks, NVRAM, the append-forest, and log streams.

* :mod:`repro.storage.disk` — seek/rotation/transfer timing model with
  the paper's slow- and fast-disk presets, plus duplexed mirrors;
* :mod:`repro.storage.nvram` — the low-latency non-volatile buffer of
  Sections 4.1/5.1;
* :mod:`repro.storage.append_forest` — the Section 4.3 index;
* :mod:`repro.storage.log_stream` — the interleaved sequential stream
  with interval-list checkpoints and the post-crash scan;
* :mod:`repro.storage.pages` — append-only page stores (write-once and
  reusable variants).
"""

from .append_forest import AppendForest, AppendForestError, ForestNode
from .disk import (
    FAST_1987_DISK,
    SLOW_1987_DISK,
    DiskParams,
    MirroredDisks,
    SimDisk,
)
from .log_stream import (
    ENTRY_HEADER_BYTES,
    Checkpoint,
    DiskLogStream,
    StreamEntry,
)
from .nvram import NvramBuffer, NvramFullError
from .pages import AppendOnlyPageStore, PageStoreError, ReusablePageStore

__all__ = [
    "AppendForest",
    "AppendForestError",
    "AppendOnlyPageStore",
    "Checkpoint",
    "DiskLogStream",
    "DiskParams",
    "ENTRY_HEADER_BYTES",
    "FAST_1987_DISK",
    "ForestNode",
    "MirroredDisks",
    "NvramBuffer",
    "NvramFullError",
    "PageStoreError",
    "ReusablePageStore",
    "SimDisk",
    "SLOW_1987_DISK",
    "StreamEntry",
]

"""Low-latency non-volatile memory buffer (Sections 4.1 and 5.1).

Power failures are a common failure mode for log servers, so buffering
log data in volatile storage is unacceptable; yet forcing each record
to disk independently is rotationally impossible at 170 forces/second.
The paper's resolution is a low-latency non-volatile buffer (CMOS with
battery backup): a force completes as soon as the record reaches the
buffer, and the buffer is drained to disk a full track at a time.

:class:`NvramBuffer` models the byte capacity and occupancy of that
buffer; contents survive crashes (:meth:`crash_preserves`).  The drain
policy lives with the server process, which owns the flush loop; the
buffer itself only accounts bytes and answers "is a track's worth
ready?".

Section 5.1 also notes NVRAM can hold the active interval lists; the
buffer exposes a small reserved region for exactly that.
"""

from __future__ import annotations

from typing import Any

from ..sim.kernel import Simulator
from ..sim.stats import TimeWeighted


class NvramFullError(Exception):
    """An append would exceed the buffer's capacity.

    Servers "are free to ignore ForceLog and WriteLog messages if they
    become too heavily loaded" (Section 4.2); a full buffer is the
    load-shedding trigger.
    """


class NvramBuffer:
    """Byte-accounting model of a battery-backed CMOS buffer."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: int = 128 * 1024,
        reserved_for_intervals: int = 4 * 1024,
    ):
        if capacity_bytes <= reserved_for_intervals:
            raise ValueError("capacity must exceed the interval reservation")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.reserved_for_intervals = reserved_for_intervals
        self._level = 0
        self.occupancy = TimeWeighted("nvram.occupancy", start=sim.now)
        self.total_appended = 0
        self.sheds = 0
        #: interval state parked in NVRAM (survives crashes); opaque.
        self._interval_region: Any = None

    @property
    def data_capacity(self) -> int:
        return self.capacity_bytes - self.reserved_for_intervals

    @property
    def level(self) -> int:
        """Bytes of log data currently buffered."""
        return self._level

    @property
    def free(self) -> int:
        return self.data_capacity - self._level

    def append(self, nbytes: int) -> None:
        """Account ``nbytes`` of log data arriving in the buffer.

        Raises :class:`NvramFullError` (and counts a shed) on overflow;
        the caller decides whether to drop the message or stall.
        """
        if nbytes < 0:
            raise ValueError("cannot append negative bytes")
        level = self._level + nbytes
        if level > self.capacity_bytes - self.reserved_for_intervals:
            self.sheds += 1
            raise NvramFullError(
                f"buffer at {self._level}/{self.data_capacity} bytes, "
                f"cannot take {nbytes}"
            )
        self._level = level
        self.total_appended += nbytes
        # occupancy.set() inlined: one call per stored record, and sim
        # time never goes backwards here.
        occ = self.occupancy
        now = self.sim.now
        occ._integral += occ._level * (now - occ._last_time)
        occ._level = level
        occ._last_time = now
        if level > occ._max:
            occ._max = level

    def drain(self, nbytes: int) -> int:
        """Remove up to ``nbytes`` (one track's worth) after a disk write.

        Returns the bytes actually drained.
        """
        taken = min(nbytes, self._level)
        self._level -= taken
        self.occupancy.set(self._level, self.sim.now)
        return taken

    def track_ready(self, track_bytes: int) -> bool:
        """True when at least a full track of data is buffered."""
        return self._level >= track_bytes

    # -- interval region (Section 5.1 / 4.3) ------------------------------

    def store_intervals(self, snapshot: Any) -> None:
        """Park the active interval lists in the reserved region."""
        self._interval_region = snapshot

    def load_intervals(self) -> Any:
        """Read back the parked interval state (after a crash)."""
        return self._interval_region

    # -- crash semantics ----------------------------------------------------

    def crash_preserves(self) -> tuple[int, Any]:
        """What survives a power failure: the level and interval region.

        Returned (not mutated) so crash handlers can assert on it; the
        buffered log bytes themselves are still pending a track write
        and will be flushed when the server restarts.
        """
        return self._level, self._interval_region

"""The interleaved on-disk log stream of a log server (Section 4.3).

"Records from different logs must be interleaved in a data stream that
is written sequentially to disk."  The stream is a sequence of
track-sized pages, each holding entries from many clients, plus
periodically checkpointed interval lists.  After a crash, "a server
must scan the end of the log data stream to find the ends of active
intervals" — :meth:`DiskLogStream.crash_scan` implements that scan,
starting at the latest checkpoint.

Entries cover the three durable effects a server performs:

* ``write``  — a ServerWriteLog/WriteLog/ForceLog record;
* ``copy``   — a CopyLog record staged under a new epoch;
* ``install``— an InstallCopies marker for one (client, epoch).

Rebuilding a :class:`~repro.core.store.LogServerStore` is a replay of
these entries in order, so the durable stream — not any volatile
structure — is the authoritative server state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal

from ..core.records import Epoch, StoredRecord
from ..core.store import LogServerStore
from .pages import ReusablePageStore

EntryKind = Literal["write", "copy", "install"]

#: Fixed per-entry header overhead used for byte accounting: entry kind,
#: client id hash, LSN, epoch, flags, length — roughly six words.
ENTRY_HEADER_BYTES = 24


@dataclass(slots=True)
class StreamEntry:
    """One durable effect in the log stream.

    Not frozen (one entry per stored record on the hot path); treat
    instances as immutable regardless.
    """

    kind: EntryKind
    client_id: str
    record: StoredRecord | None = None
    epoch: Epoch | None = None  # for install markers
    #: header + data bytes, computed once at construction — the server
    #: reads it for NVRAM accounting and again for track packing.
    byte_size: int = field(init=False, default=ENTRY_HEADER_BYTES)

    def __post_init__(self) -> None:
        if self.kind in ("write", "copy") and self.record is None:
            raise ValueError(f"{self.kind} entry requires a record")
        if self.kind == "install" and self.epoch is None:
            raise ValueError("install entry requires an epoch")
        if self.record is not None:
            self.byte_size = ENTRY_HEADER_BYTES + len(self.record.data)


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """Interval-list checkpoint: stream position + serialized intervals.

    ``track_index`` is the first track the crash scan must read;
    ``intervals`` maps client id to its (epoch, lo, hi) triples at
    checkpoint time.  Kept deliberately small — "storing one interval
    requires space for three integers".
    """

    track_index: int
    intervals: dict[str, tuple[tuple[int, int, int], ...]]


class DiskLogStream:
    """Track-at-a-time sequential stream over an append-only page store."""

    def __init__(self, track_bytes: int = 8192, name: str = "stream",
                 write_once: bool = False):
        self.track_bytes = track_bytes
        #: write-once (optical) media have no reusable known location;
        #: checkpoints are appended into the stream itself ("they may
        #: be checkpointed to a known location on a reusable disk or to
        #: a write once disk along with the log data stream").
        self.write_once = write_once
        self.pages = ReusablePageStore(name)
        self._open_track: list[StreamEntry] = []
        self._open_track_bytes = 0
        self.entries_appended = 0
        self.bytes_appended = 0
        #: optional callback fired at every seal with
        #: ``(track_address, entries)``; the server's append-forest
        #: index subscribes here (Section 4.3).
        self.on_seal = None

    # -- appending ------------------------------------------------------------

    def append(self, entry: StreamEntry) -> None:
        """Buffer one entry into the open track; seal when full.

        A single entry larger than a track occupies a track of its own
        (the protocol would stream it across packets; on disk it simply
        spans — modelled as an oversized page).
        """
        size = entry.byte_size
        if self._open_track and self._open_track_bytes + size > self.track_bytes:
            self.seal_track()
        self._open_track.append(entry)
        self._open_track_bytes += size
        self.entries_appended += 1
        self.bytes_appended += size
        if self._open_track_bytes >= self.track_bytes:
            self.seal_track()

    def seal_track(self) -> int | None:
        """Write the open track to the page store; return its address."""
        if not self._open_track:
            return None
        entries = tuple(self._open_track)
        address = self.pages.append(entries)
        self._open_track = []
        self._open_track_bytes = 0
        if self.on_seal is not None:
            self.on_seal(address, entries)
        return address

    @property
    def open_entry_count(self) -> int:
        """Entries buffered but not yet on a sealed track.

        These model data sitting in NVRAM: durable against power loss
        in the paper's design, so :meth:`crash_scan` includes them by
        default (``lose_open_track=True`` models a server *without*
        NVRAM, whose open track is volatile).
        """
        return len(self._open_track)

    # -- checkpoints -------------------------------------------------------------

    def checkpoint(self, store: LogServerStore) -> Checkpoint:
        """Write an interval-list checkpoint.

        On reusable media the checkpoint overwrites the known location;
        on write-once media it is appended into the stream (after
        sealing the open track so its position is exact).  Either way,
        a crash scan replays only entries at or after the checkpointed
        track.
        """
        snapshot = {
            client_id: tuple(
                (iv.epoch, iv.lo, iv.hi)
                for iv in store.client_state(client_id).intervals()
            )
            for client_id in store.known_clients()
        }
        if self.write_once:
            self.seal_track()
            cp = Checkpoint(track_index=self.pages.next_address + 1,
                            intervals=snapshot)
            self.pages.append(cp)
        else:
            cp = Checkpoint(track_index=self.pages.next_address,
                            intervals=snapshot)
            self.pages.write_known_location(cp)
        return cp

    # -- recovery ---------------------------------------------------------------

    def entries(
        self, from_track: int = 0, include_open: bool = True
    ) -> Iterator[StreamEntry]:
        """Iterate entries from ``from_track`` to the tail in order.

        In-stream checkpoint pages (write-once media) carry no entries
        and are skipped.
        """
        for _address, track in self.pages.scan(from_track):
            if isinstance(track, Checkpoint):
                continue
            yield from track
        if include_open:
            yield from self._open_track

    def latest_checkpoint(self) -> Checkpoint | None:
        """The newest checkpoint, wherever this medium keeps it."""
        if not self.write_once:
            return self.pages.read_known_location()
        for address in range(len(self.pages) - 1, -1, -1):
            page = self.pages.read(address)
            if isinstance(page, Checkpoint):
                return page
        return None

    def crash_scan(
        self, server_id: str, lose_open_track: bool = False
    ) -> tuple[LogServerStore, int]:
        """Rebuild the server's semantic state after a crash.

        Returns ``(store, entries_replayed)``.  The full stream is the
        authority: replay starts from track 0 so record *data* is
        recovered; the interval checkpoint bounds only how many entries
        must be re-*parsed* for interval reconstruction in a real
        system, and is validated against the replayed state by the
        tests (see ``scan_cost_with_checkpoint``).
        """
        store = LogServerStore(server_id)
        replayed = 0
        for entry in self.entries(0, include_open=not lose_open_track):
            self._apply(store, entry)
            replayed += 1
        return store, replayed

    def scan_cost_with_checkpoint(self) -> int:
        """Entries the interval scan must parse given the checkpoint.

        This is the quantity checkpointing exists to bound: only the
        tracks written after the checkpoint need scanning to find "the
        ends of active intervals".
        """
        cp = self.latest_checkpoint()
        start = cp.track_index if cp is not None else 0
        return sum(1 for _ in self.entries(start))

    @staticmethod
    def _apply(store: LogServerStore, entry: StreamEntry) -> None:
        if entry.kind == "write":
            rec = entry.record
            store.server_write_log(
                entry.client_id, rec.lsn, rec.epoch, rec.present, rec.data, rec.kind
            )
        elif entry.kind == "copy":
            rec = entry.record
            store.copy_log(
                entry.client_id, rec.lsn, rec.epoch, rec.present, rec.data, rec.kind
            )
        else:
            store.install_copies(entry.client_id, entry.epoch)

"""Append-only page stores.

Section 4.3 designs the server's disk data structures to "permit the
use of write once (optical) storage": every structure only ever appends
pages, and every pointer refers to an already-written page.  The page
store here enforces exactly that discipline — pages get increasing
addresses, are immutable once written, and can be truncated only from
the tail (to model a torn final write during a crash).

Two variants mirror the paper's two media:

* :class:`AppendOnlyPageStore` — write-once semantics (optical disk);
* :class:`ReusablePageStore` — adds a *known location* that may be
  overwritten in place, used for interval-list checkpoints on a
  reusable magnetic disk ("they may be checkpointed to a known location
  on a reusable disk or to a write once disk along with the log data
  stream").
"""

from __future__ import annotations

from typing import Any, Iterator

#: Address of a page within a store.
PageAddress = int


class PageStoreError(Exception):
    """Violation of the append-only discipline."""


class AppendOnlyPageStore:
    """A sequence of immutable pages with integer addresses.

    ``payload`` objects are treated as opaque and immutable by
    convention; the store never hands out means to mutate them.
    """

    def __init__(self, name: str = "pages"):
        self.name = name
        self._pages: list[Any] = []
        self.appends = 0
        self.reads = 0

    def append(self, payload: Any) -> PageAddress:
        """Write a new page; return its address."""
        self._pages.append(payload)
        self.appends += 1
        return len(self._pages) - 1

    def read(self, address: PageAddress) -> Any:
        """Read the page at ``address``."""
        if not 0 <= address < len(self._pages):
            raise PageStoreError(
                f"address {address} out of range [0, {len(self._pages)})"
            )
        self.reads += 1
        return self._pages[address]

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def next_address(self) -> PageAddress:
        """The address the next append will receive."""
        return len(self._pages)

    def truncate_tail(self, keep: int) -> None:
        """Drop pages with address >= ``keep``.

        Models the loss of an in-flight final write during a crash.
        Only the tail may be lost — earlier pages are durable.
        """
        if keep < 0 or keep > len(self._pages):
            raise PageStoreError(f"cannot truncate to {keep} pages")
        del self._pages[keep:]

    def scan(self, start: PageAddress = 0) -> Iterator[tuple[PageAddress, Any]]:
        """Iterate ``(address, payload)`` from ``start`` to the tail."""
        for address in range(start, len(self._pages)):
            self.reads += 1
            yield address, self._pages[address]


class ReusablePageStore(AppendOnlyPageStore):
    """An append-only store plus one overwritable *known location*.

    The known location holds the latest interval-list checkpoint on a
    magnetic disk.  It is updated atomically (a real implementation
    would ping-pong two sectors with version numbers; the model keeps
    the abstraction).
    """

    def __init__(self, name: str = "pages"):
        super().__init__(name)
        self._known_location: Any = None
        self.checkpoint_writes = 0

    def write_known_location(self, payload: Any) -> None:
        self._known_location = payload
        self.checkpoint_writes += 1

    def read_known_location(self) -> Any:
        return self._known_location

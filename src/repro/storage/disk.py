"""Disk timing model.

Section 4.1's bottleneck analysis is about disk economics: forcing each
request independently is impossible (rotational latency), so records
from all clients are merged into one stream "written sequentially to
disk" a track at a time, out of a low-latency non-volatile buffer.

The model charges each operation::

    seek + rotational alignment + transfer

where sequential track writes pay only a track-to-track seek, random
reads pay the average seek, rotational alignment averages half a
revolution, and transfer time is the rotation time scaled by the
fraction of a track moved.  Presets match the paper's "slow disks with
small tracks" (utilization close to fifty percent under the target
load) and a faster large-track disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.kernel import Simulator
from ..sim.resources import Resource


@dataclass(frozen=True, slots=True)
class DiskParams:
    """Geometry and timing of one disk."""

    rpm: float = 3600.0
    track_bytes: int = 8192
    avg_seek_s: float = 0.040
    track_to_track_seek_s: float = 0.008

    def __post_init__(self) -> None:
        if self.rpm <= 0 or self.track_bytes <= 0:
            raise ValueError("rpm and track_bytes must be positive")
        if self.avg_seek_s < 0 or self.track_to_track_seek_s < 0:
            raise ValueError("seek times must be non-negative")

    @property
    def rotation_s(self) -> float:
        """One full revolution."""
        return 60.0 / self.rpm

    @property
    def half_rotation_s(self) -> float:
        """Average rotational alignment delay."""
        return self.rotation_s / 2.0

    def transfer_s(self, nbytes: int) -> float:
        """Time the head spends moving ``nbytes`` past itself."""
        return self.rotation_s * (nbytes / self.track_bytes)

    def sequential_track_write_s(self, nbytes: int | None = None) -> float:
        """Service time of one track write in the sequential log stream."""
        size = self.track_bytes if nbytes is None else nbytes
        return (
            self.track_to_track_seek_s
            + self.half_rotation_s
            + self.transfer_s(size)
        )

    def random_read_s(self, nbytes: int) -> float:
        """Service time of one random read (node restart, media recovery)."""
        return self.avg_seek_s + self.half_rotation_s + self.transfer_s(nbytes)

    def forced_record_write_s(self, nbytes: int) -> float:
        """Service time of forcing one record without an NVRAM buffer.

        Each force must wait out rotational alignment individually —
        the cost Section 4.1 declares "too high to permit each request
        to be forced to disk independently".
        """
        return (
            self.track_to_track_seek_s
            + self.half_rotation_s
            + self.transfer_s(max(nbytes, 512))
        )


#: "Slow disks with small tracks" — lands near the paper's ~50 %
#: utilization under the 500-TPS target load.
SLOW_1987_DISK = DiskParams(
    rpm=3600.0, track_bytes=8192, avg_seek_s=0.040, track_to_track_seek_s=0.008
)

#: A faster large-track disk for contrast.
FAST_1987_DISK = DiskParams(
    rpm=3600.0, track_bytes=32768, avg_seek_s=0.028, track_to_track_seek_s=0.003
)


class SimDisk:
    """A disk inside the simulation: one arm, FIFO service.

    Operations are generator methods to be driven with ``yield from``
    inside a simulation process; each holds the arm for its service
    time.  Counters feed the utilization rows of the Section 4.1
    experiment.
    """

    def __init__(self, sim: Simulator, params: DiskParams = SLOW_1987_DISK,
                 name: str = "disk"):
        self.sim = sim
        self.params = params
        self.name = name
        self.arm = Resource(sim, capacity=1, name=f"{name}.arm")
        self.bytes_written = 0
        self.tracks_written = 0
        self.bytes_read = 0
        self.reads = 0
        self.forces = 0

    def write_track(self, nbytes: int | None = None):
        """Write one (possibly partial) track of the sequential stream."""
        size = self.params.track_bytes if nbytes is None else nbytes
        yield from self.arm.use(self.params.sequential_track_write_s(size))
        self.bytes_written += size
        self.tracks_written += 1

    def force_record(self, nbytes: int):
        """Force a single record to disk (no NVRAM path)."""
        yield from self.arm.use(self.params.forced_record_write_s(nbytes))
        self.bytes_written += nbytes
        self.forces += 1

    def random_read(self, nbytes: int):
        """Random read of ``nbytes`` (log reads during recovery)."""
        yield from self.arm.use(self.params.random_read_s(nbytes))
        self.bytes_read += nbytes
        self.reads += 1

    def utilization(self) -> float:
        """Fraction of time the arm has been busy since t=0."""
        return self.arm.utilization()


class MirroredDisks:
    """Two disks written in parallel, both must finish (duplexed log).

    The baseline configuration of Section 1: "logs can be implemented
    with data written to duplexed disks on each processing node".
    """

    def __init__(self, sim: Simulator, params: DiskParams = SLOW_1987_DISK,
                 name: str = "mirrored"):
        self.sim = sim
        self.params = params
        self.primary = SimDisk(sim, params, f"{name}.a")
        self.secondary = SimDisk(sim, params, f"{name}.b")

    def write_track(self, nbytes: int | None = None):
        """Write the same track to both disks concurrently."""
        def one(disk: SimDisk):
            yield from disk.write_track(nbytes)
        done = self.sim.all_of([
            self.sim.spawn(one(self.primary)),
            self.sim.spawn(one(self.secondary)),
        ])
        yield done

    def force_record(self, nbytes: int):
        """Force one record to both disks concurrently."""
        def one(disk: SimDisk):
            yield from disk.force_record(nbytes)
        done = self.sim.all_of([
            self.sim.spawn(one(self.primary)),
            self.sim.spawn(one(self.secondary)),
        ])
        yield done

    def random_read(self, nbytes: int):
        """Random read served by the primary disk."""
        yield from self.primary.random_read(nbytes)

    def utilization(self) -> float:
        return (self.primary.utilization() + self.secondary.utilization()) / 2.0

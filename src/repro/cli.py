"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the experiment harness so the paper's results
can be regenerated without writing code:

* ``python -m repro availability``  — the Figure 3-4 table;
* ``python -m repro capacity``      — the Section 4.1 capacity table;
* ``python -m repro figures``       — the Figures 3-2/3-3 server states;
* ``python -m repro target-load``   — the simulated 500-TPS experiment;
* ``python -m repro prototype``     — the Section 5.6 comparison;
* ``python -m repro degraded``      — WriteLog under server outages;
* ``python -m repro sweep``         — offered-load saturation sweep;
* ``python -m repro churn``         — availability under crash/repair churn;
* ``python -m repro restart-latency`` — client init time vs M;
* ``python -m repro serve``         — run one real log-server daemon;
* ``python -m repro loadgen``       — drive ET1 load at a real cluster;
* ``python -m repro stats``         — query a daemon's counters;
* ``python -m repro ring``          — consistent-hash placement directory;
* ``python -m repro crashsweep``    — crash-point durability sweep.

Installed as the ``repro`` console script (``pip install -e .``).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import CapacityConfig, analyze
from .core.availability import figure_3_4_series
from .harness import (
    ChurnConfig,
    TargetLoadConfig,
    run_availability_churn,
    run_degraded_mode,
    run_load_sweep,
    run_paper_figure_states,
    run_prototype_comparison,
    run_restart_latency,
    run_target_load,
)
from .harness.tables import format_table


def _cmd_availability(args: argparse.Namespace) -> int:
    rows = []
    for n, points in sorted(figure_3_4_series(p=args.p, max_m=args.max_m).items()):
        for pt in points:
            rows.append((pt.m, pt.n, f"{pt.write:.6f}", f"{pt.init:.6f}",
                         f"{pt.read:.6f}"))
    print(format_table(
        ["M", "N", "WriteLog", "client init", "ReadLog"], rows,
        title=f"Figure 3-4 — availability of replicated logs (p = {args.p})",
    ))
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    report = analyze(CapacityConfig(
        clients=args.clients, servers=args.servers, copies=args.copies,
    ))
    print(format_table(
        ["quantity", "model", "paper"], report.rows(),
        title=(f"Section 4.1 — capacity analysis ({args.clients} clients, "
               f"{args.servers} servers, N={args.copies})"),
    ))
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    states = run_paper_figure_states()
    for title, tables in (
        ("Figure 3-2 (record 10 partially written)", states.figure_3_2),
        ("Figure 3-3 (after crash recovery)", states.figure_3_3),
    ):
        for server_id in sorted(tables):
            print()
            print(format_table(["LSN", "Epoch", "Present"],
                               tables[server_id],
                               title=f"{title} — {server_id}"))
    print(f"\nreplicated log contents: {states.replicated_log_contents}")
    return 0


def _cmd_target_load(args: argparse.Namespace) -> int:
    result = run_target_load(TargetLoadConfig(
        clients=args.clients, servers=args.servers,
        duration_s=args.duration, seed=args.seed,
    ))
    print(format_table(
        ["quantity", "measured", "expected"], result.rows(),
        title=(f"Section 4.1 (simulated) — {args.clients} clients, "
               f"{args.servers} servers, {args.duration}s"),
    ))
    print(f"\ncompleted transactions: {result.completed_txns}; "
          f"force p95 {result.force_p95_ms:.2f} ms")
    return 0


def _cmd_prototype(args: argparse.Namespace) -> int:
    pc = run_prototype_comparison(transactions=args.transactions)
    print(format_table(
        ["remote (s)", "local (s)", "ratio"],
        [(f"{pc.remote_elapsed_s:.2f}", f"{pc.local_elapsed_s:.2f}",
          f"{pc.ratio:.2f}")],
        title=(f"Section 5.6 — remote (N=2, Accent IPC) vs local disk, "
               f"{args.transactions} ET1 transactions"),
    ))
    print("\npaper: remote used less than twice the local elapsed time")
    return 0


def _cmd_degraded(args: argparse.Namespace) -> int:
    rows = run_degraded_mode(duration_s=args.duration)
    print(format_table(
        ["down", "up", "txns", "mean force (ms)", "survivor CPU"],
        [(r.servers_down, r.servers_up, r.completed_txns,
          f"{r.mean_force_ms:.2f}",
          f"{r.survivor_cpu_utilization * 100:.1f}%") for r in rows],
        title="Section 3.2 — WriteLog under server outages",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    rows = run_load_sweep(duration_s=args.duration)
    print(format_table(
        ["offered TPS/client", "achieved", "mean force (ms)", "disk util",
         "shed"],
        [(f"{r.tps_per_client:.0f}", f"{r.achieved_tps:.0f}",
          f"{r.mean_force_ms:.2f}", f"{r.disk_utilization * 100:.0f}%",
          r.messages_shed) for r in rows],
        title="Saturation sweep",
    ))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    result = run_availability_churn(ChurnConfig(
        servers=args.servers, copies=args.copies, clients=args.clients,
        p=args.p, mtbf_s=args.mtbf, duration_s=args.duration,
        tps_per_client=args.tps, seed=args.seed,
        link_p=args.link_p, generator_p=args.generator_p,
    ))
    print(format_table(
        ["quantity", "measured", "closed form"], result.rows(),
        title=(f"Section 3.2 under churn — M={args.servers}, "
               f"N={args.copies}, p={args.p}, {args.duration:.0f}s"),
    ))
    print(f"\nserver crashes: {result.server_crashes} "
          f"(mttr {result.mttr_s:.2f}s); "
          f"link crashes: {result.link_crashes}; "
          f"generator crashes: {result.generator_crashes}")
    print(f"transactions committed: {result.committed_txns}, "
          f"failed: {result.failed_txns}; "
          f"client initializations: {result.client_reinits}; "
          f"write-set migrations: {result.server_switches}")
    return 0


def _cmd_restart(args: argparse.Namespace) -> int:
    rows = run_restart_latency()
    print(format_table(
        ["M", "mean restart (ms)", "max restart (ms)"],
        [(r.m, f"{r.mean_restart_ms:.1f}", f"{r.max_restart_ms:.1f}")
         for r in rows],
        title="Client initialization latency vs M",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .rt.eventloop import install_loop_backend
    from .rt.server import run_server

    install_loop_backend(args.loop)
    try:
        asyncio.run(run_server(
            args.data_dir, args.server_id, args.host, args.port,
            compact_watermark_bytes=args.compact_watermark_bytes,
            fault_plan=args.fault_plan,
            fault_trace=args.fault_trace,
            group_commit=not args.no_group_commit,
            cluster_spec=args.cluster_spec,
        ))
    except KeyboardInterrupt:
        pass
    return 0


def _parse_server_arg(spec: str) -> tuple[str, tuple[str, int]]:
    """``sid=host:port`` → ``(sid, (host, port))``."""
    try:
        sid, addr = spec.split("=", 1)
        host, port = addr.rsplit(":", 1)
        return sid, (host, int(port))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected sid=host:port, got {spec!r}"
        ) from None


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .core.config import ReplicationConfig
    from .rt.eventloop import install_loop_backend
    from .rt.loadgen import run_loadgen_sync, run_multi_loadgen_sync
    from .rt.placement import PlacementDirectory, load_cluster_spec

    install_loop_backend(args.loop)
    if args.cluster_spec:
        directory = PlacementDirectory(load_cluster_spec(args.cluster_spec))
        servers, config = directory, None
        fleet = len(directory.addresses())
        copies = directory.spec.copies
    elif args.server:
        addrs = dict(_parse_server_arg(s) for s in args.server)
        config = ReplicationConfig(total_servers=len(addrs),
                                   copies=args.copies, delta=args.delta)
        servers, fleet, copies = addrs, len(addrs), args.copies
    else:
        raise SystemExit("loadgen needs --cluster-spec or --server")
    if args.clients > 1:
        multi = run_multi_loadgen_sync(
            servers, config, clients=args.clients,
            client_id=args.client_id, tenants=args.tenants,
            base_seed=args.seed, duration_s=args.duration,
            max_txns=args.max_txns, truncate_every=args.truncate_every,
        )
        if args.json:
            print(json.dumps(multi.as_dict(), indent=2, sort_keys=True))
        else:
            print(format_table(
                ["client", "txns", "txns/s", "p99 force (ms)"],
                [(r.client_id, r.transactions, f"{r.txns_per_sec:.1f}",
                  f"{r.force_p99_ms:.2f}") for r in multi.per_client]
                + [("TOTAL", multi.transactions,
                    f"{multi.txns_per_sec:.1f}",
                    f"{multi.force_p99_ms:.2f}")],
                title=(f"ET1 load: {args.clients} clients against "
                       f"{fleet} real servers (N={copies})"),
            ))
        return 0
    report = run_loadgen_sync(
        servers, config, client_id=args.client_id,
        duration_s=args.duration,
        max_txns=args.max_txns,
        truncate_every=args.truncate_every,
        rng_seed=args.seed,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_table(
            ["quantity", "value"],
            [(k, str(v)) for k, v in sorted(report.as_dict().items())],
            title=(f"ET1 load against {fleet} real servers "
                   f"(N={copies})"),
        ))
    return 0


def _cmd_ring(args: argparse.Namespace) -> int:
    import json

    from .rt.placement import (
        PlacementDirectory,
        load_cluster_spec,
        loadgen_client_ids,
    )

    directory = PlacementDirectory(load_cluster_spec(args.cluster_spec))
    changed = directory
    for sid in args.remove or []:
        changed = changed.without_server(sid)
    for spec in args.add or []:
        sid, addr = _parse_server_arg(spec)
        changed = changed.with_server(sid, addr)
    ids = (args.client_id or
           loadgen_client_ids(args.clients, tenants=args.tenants,
                              prefix=args.prefix))
    assignments = changed.assignments(ids)
    moved = (directory.moved_clients(changed, ids)
             if changed is not directory else [])
    if args.json:
        print(json.dumps({
            "digest": changed.digest(),
            "servers": sorted(changed.addresses()),
            "copies": changed.spec.copies,
            "vnodes": changed.spec.vnodes,
            "assignments": assignments,
            "moved": sorted(moved),
        }, indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["client", "write set"],
        [(cid, " ".join(ws)) for cid, ws in assignments.items()],
        title=(f"placement — {len(changed.addresses())} servers, "
               f"N={changed.spec.copies}, vnodes={changed.spec.vnodes}, "
               f"digest {changed.digest()[:12]}"),
    ))
    per_server: dict[str, int] = {}
    for ws in assignments.values():
        for sid in ws:
            per_server[sid] = per_server.get(sid, 0) + 1
    print("\nstreams per server: " + ", ".join(
        f"{sid}={n}" for sid, n in sorted(per_server.items())))
    if changed is not directory:
        print(f"roster change moves {len(moved)}/{len(ids)} clients: "
              + (" ".join(sorted(moved)) or "(none)"))
    return 0


def _cmd_crashsweep(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .harness.crashsweep import SweepConfig, run_crashsweep

    # --net / --fuzz / --plan narrow the run to the network phases,
    # mirroring how --client narrows it to the client phase; a default
    # full run includes the network sweep unless --no-net is passed.
    net_only = bool(args.net or args.fuzz or args.plan)
    run_net = args.net or (not net_only and not args.no_net
                           and not args.client)
    with tempfile.TemporaryDirectory(prefix="crashsweep-") as tmp:
        report = run_crashsweep(
            SweepConfig(
                root_dir=args.root_dir or tmp,
                seed=args.seed,
                quick=args.quick,
                point=args.point,
                daemon=not args.no_daemon,
                client=not args.no_client,
                client_only=args.client,
                net=run_net,
                fuzz=args.fuzz,
                net_only=net_only,
                plan=args.plan,
            ),
            progress=None if args.json else print,
        )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print()
        if report.sites:
            print(format_table(
                ["site", "points"],
                [(site, str(n))
                 for site, n in sorted(report.sites.items())],
                title=(f"crash-point sweep — seed {report.seed}, "
                       f"{report.points_enumerated} points enumerated, "
                       f"{report.cases_run} cases run"),
            ))
        if report.client_sites:
            print(format_table(
                ["client site", "points"],
                [(site, str(n))
                 for site, n in sorted(report.client_sites.items())],
                title=(f"client phase — "
                       f"{report.client_points_enumerated} protocol "
                       f"points, {len(report.client_cases)} kill cases, "
                       f"{report.combined_cases_run} combined"),
            ))
        if report.net_sites:
            print(format_table(
                ["network site", "frames"],
                [(site, str(n))
                 for site, n in sorted(report.net_sites.items())],
                title=(f"network phase — "
                       f"{report.net_points_enumerated} frame points, "
                       f"{len(report.net_cases)} fault cases "
                       f"({report.net_partition_cases} partition-"
                       f"switch, {report.net_handoff_cases} handoff), "
                       f"{len(report.fuzz_cases)} fuzz"),
            ))
        if report.failures:
            print("\nFAILURES:")
            for case in report.failures:
                for error in case.errors:
                    print(f"  {case.spec}: {error}")
        else:
            print(f"\nall {report.cases_run} crash cases passed "
                  f"({report.duration_s:.1f}s)")
    return 1 if report.failures else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .net.codec import frame, read_message
    from .net.messages import StatsCall, StatsReply

    async def fetch(host: str, port: int) -> dict:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), args.timeout)
        try:
            writer.write(frame(StatsCall(args.client_id)))
            await writer.drain()
            reply = await asyncio.wait_for(read_message(reader),
                                           args.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not isinstance(reply, StatsReply):
            raise SystemExit(f"unexpected reply: {reply!r}")
        return reply.as_dict()

    if args.all or args.cluster_spec:
        # Fleet fan-out: one concurrent StatsCall per roster entry,
        # aggregated into per-server rows plus fleet totals.
        from .rt.placement import load_cluster_spec

        if not args.cluster_spec:
            raise SystemExit("stats --all needs --cluster-spec")
        roster = load_cluster_spec(args.cluster_spec).servers

        async def fan_out() -> dict[str, dict | None]:
            results = await asyncio.gather(
                *(fetch(host, port) for host, port in roster.values()),
                return_exceptions=True,
            )
            return {sid: (r if isinstance(r, dict) else None)
                    for sid, r in zip(roster, results)}

        per_server = asyncio.run(fan_out())
        reached = {sid: c for sid, c in per_server.items() if c is not None}
        totals: dict[str, int] = {}
        for counters in reached.values():
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        if args.json:
            print(json.dumps(
                {"servers": per_server, "fleet": totals,
                 "unreachable": sorted(set(per_server) - set(reached))},
                indent=2, sort_keys=True))
            return 0 if reached else 1
        show = ["messages_handled", "forces_acked", "store_records",
                "log_bytes", "fsyncs", "quota_rejections",
                "tenant_streams", "fence_rejections", "fence_epoch"]
        rows = [
            tuple([sid] + [str(counters[k]) for k in show])
            for sid, counters in sorted(reached.items())
        ] + [
            tuple([sid] + ["DOWN"] * len(show))
            for sid in sorted(set(per_server) - set(reached))
        ] + [tuple(["FLEET"] + [str(totals.get(k, 0)) for k in show])]
        print(format_table(
            ["server"] + show, rows,
            title=(f"fleet stats — {len(reached)}/{len(per_server)} "
                   f"servers reachable"),
        ))
        return 0 if reached else 1

    if not args.address:
        raise SystemExit("stats needs an address or --cluster-spec --all")
    host, port = args.address.rsplit(":", 1)
    counters = asyncio.run(fetch(host, int(port)))
    if args.json:
        print(json.dumps(counters, indent=2, sort_keys=True))
    else:
        print(format_table(
            ["counter", "value"],
            [(k, str(v)) for k, v in counters.items()],
            title=f"log-server stats — {args.address}",
        ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Distributed Logging for Transaction "
                    "Processing' (SIGMOD 1987)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print the top 25 "
             "functions by cumulative time",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("availability", help="Figure 3-4 closed forms")
    p.add_argument("--p", type=float, default=0.05,
                   help="per-server unavailability (default 0.05)")
    p.add_argument("--max-m", type=int, default=8)
    p.set_defaults(func=_cmd_availability)

    p = sub.add_parser("capacity", help="Section 4.1 capacity analysis")
    p.add_argument("--clients", type=int, default=50)
    p.add_argument("--servers", type=int, default=6)
    p.add_argument("--copies", type=int, default=2)
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("figures", help="Figures 3-2/3-3 server states")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("target-load", help="simulated Section 4.1 load")
    p.add_argument("--clients", type=int, default=50)
    p.add_argument("--servers", type=int, default=6)
    p.add_argument("--duration", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_target_load)

    p = sub.add_parser("prototype", help="Section 5.6 comparison")
    p.add_argument("--transactions", type=int, default=200)
    p.set_defaults(func=_cmd_prototype)

    p = sub.add_parser("degraded", help="WriteLog under server outages")
    p.add_argument("--duration", type=float, default=2.0)
    p.set_defaults(func=_cmd_degraded)

    p = sub.add_parser("sweep", help="offered-load saturation sweep")
    p.add_argument("--duration", type=float, default=2.0)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "churn", help="measured vs closed-form availability under "
                      "crash/repair churn")
    p.add_argument("--servers", type=int, default=6)
    p.add_argument("--copies", type=int, default=2)
    p.add_argument("--clients", type=int, default=3)
    p.add_argument("--p", type=float, default=0.05,
                   help="per-server long-run unavailability (default 0.05)")
    p.add_argument("--mtbf", type=float, default=30.0,
                   help="mean time between server failures, seconds")
    p.add_argument("--duration", type=float, default=120.0,
                   help="simulated seconds of churn (default 120)")
    p.add_argument("--tps", type=float, default=10.0,
                   help="ET1 transactions/second per client")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--link-p", type=float, default=0.0,
                   help="LAN unavailability (message-loss churn)")
    p.add_argument("--generator-p", type=float, default=0.0,
                   help="generator-representative unavailability")
    p.set_defaults(func=_cmd_churn)

    p = sub.add_parser("restart-latency", help="client init time vs M")
    p.set_defaults(func=_cmd_restart)

    p = sub.add_parser(
        "serve", help="run one real log-server daemon (asyncio, TCP)")
    p.add_argument("--data-dir", required=True,
                   help="directory for the durable log and forest files")
    p.add_argument("--server-id", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral; the chosen port is "
                        "announced as 'REPRO-SERVE <id> <host> <port>')")
    p.add_argument("--compact-watermark-bytes", type=int, default=None,
                   help="compact the on-disk log whenever it exceeds "
                        "this size (Section 5.3 fallback when clients "
                        "do not send TruncateLog; default off)")
    p.add_argument("--fault-plan", default=None, metavar="SITE:IDX:ACTION",
                   help="arm one deterministic storage fault (e.g. "
                        "'log.fsync:3:power-loss'); the daemon exits 86 "
                        "when an injected crash fires")
    p.add_argument("--fault-trace", default=None, metavar="PATH",
                   help="append every storage I/O point this daemon hits "
                        "to PATH (crash-point enumeration)")
    p.add_argument("--no-group-commit", action="store_true",
                   help="disable the shared one-fsync-per-group commit "
                        "path (each ForceLog appends and fsyncs inline; "
                        "the perf baseline for A/B benchmarks)")
    p.add_argument("--cluster-spec", default=None, metavar="PATH",
                   help="placements.json with per-tenant quotas to "
                        "enforce (the roster section is for clients; "
                        "this daemon still binds from its own args)")
    p.add_argument("--loop", default="asyncio",
                   choices=["asyncio", "uvloop"],
                   help="event-loop backend (uvloop is optional and "
                        "must be installed; default asyncio)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen", help="drive ET1 log load at running log servers")
    p.add_argument("--server", action="append", default=None,
                   metavar="SID=HOST:PORT",
                   help="one per server; repeat for the whole cluster "
                        "(or use --cluster-spec)")
    p.add_argument("--cluster-spec", default=None, metavar="PATH",
                   help="placements.json naming the roster and (N, δ); "
                        "clients are then placed through the "
                        "consistent-hash ring")
    p.add_argument("--copies", type=int, default=2,
                   help="N (default 2; ignored with --cluster-spec)")
    p.add_argument("--delta", type=int, default=8,
                   help="unacknowledged-record bound (default 8; "
                        "ignored with --cluster-spec)")
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("--max-txns", type=int, default=None)
    p.add_argument("--client-id", default="loadgen")
    p.add_argument("--clients", type=int, default=1,
                   help="concurrent closed-loop clients (default 1); "
                        "with K > 1 each client runs its own log as "
                        "<client-id>-<i>")
    p.add_argument("--tenants", type=int, default=0,
                   help="round-robin multi-client streams over this "
                        "many tenants as t<j>/<client-id>-<i> "
                        "(default 0: each stream is its own tenant)")
    p.add_argument("--seed", type=int, default=None,
                   help="base seed for deterministic per-client retry "
                        "jitter (client i uses a seed derived from "
                        "(seed, i))")
    p.add_argument("--truncate-every", type=int, default=0,
                   help="send a Section 5.3 TruncateLog round every "
                        "this many transactions (default off)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of a table")
    p.add_argument("--loop", default="asyncio",
                   choices=["asyncio", "uvloop"],
                   help="event-loop backend (uvloop is optional and "
                        "must be installed; default asyncio)")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "ring", help="print the consistent-hash placement directory "
                     "for a cluster spec")
    p.add_argument("--cluster-spec", required=True, metavar="PATH",
                   help="placements.json naming the roster")
    p.add_argument("--clients", type=int, default=16,
                   help="how many loadgen-style client ids to place "
                        "(default 16)")
    p.add_argument("--tenants", type=int, default=0,
                   help="spread the placed ids over this many tenants")
    p.add_argument("--prefix", default="lg",
                   help="client-id prefix for the placed ids")
    p.add_argument("--client-id", action="append", default=None,
                   metavar="CID",
                   help="place exactly these ids instead of generated "
                        "ones; repeatable")
    p.add_argument("--remove", action="append", default=None,
                   metavar="SID",
                   help="preview the roster without this server "
                        "(repeatable); prints which clients move")
    p.add_argument("--add", action="append", default=None,
                   metavar="SID=HOST:PORT",
                   help="preview the roster with this server added")
    p.add_argument("--json", action="store_true",
                   help="emit assignments as JSON (the cross-process "
                        "determinism check in the tests diffs this)")
    p.set_defaults(func=_cmd_ring)

    p = sub.add_parser(
        "crashsweep",
        help="enumerate every storage I/O point of a scripted workload "
             "and re-run it crashing at each, checking the durability "
             "invariants after recovery")
    p.add_argument("--root-dir", default=None,
                   help="working directory for the sweep's stores "
                        "(default: a fresh temporary directory)")
    p.add_argument("--seed", type=int, default=0,
                   help="payload RNG seed (logged; use to replay a run)")
    p.add_argument("--quick", action="store_true",
                   help="bounded CI smoke: first/last point per site, "
                        "power-loss everywhere + one torn/flip/errno "
                        "case per site")
    p.add_argument("--point", default=None, metavar="SITE:IDX[:ACTION]",
                   help="replay exactly one crash case (action defaults "
                        "to power-loss; client.* replays a client-kill "
                        "case, net.* a frame-fault case with default "
                        "action drop)")
    p.add_argument("--no-daemon", action="store_true",
                   help="skip the subprocess phase (real 'repro serve' "
                        "daemons crashed over the wire)")
    p.add_argument("--client", action="store_true",
                   help="run only the client phase: kill a real client "
                        "worker process at each protocol crash point "
                        "and restart per Section 5.4 from a second "
                        "process")
    p.add_argument("--no-client", action="store_true",
                   help="skip the client phase")
    p.add_argument("--net", action="store_true",
                   help="run only the network phase: frame-level "
                        "faults (drop, corrupt, truncate, duplicate, "
                        "delay, partition, kill) injected by a "
                        "protocol-aware proxy fleet fronting real "
                        "daemons, plus Section 5.4 switch-under-"
                        "partition cases")
    p.add_argument("--no-net", action="store_true",
                   help="skip the network phase in a full run")
    p.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="run N seeded multi-fault fuzz cases composing "
                        "network, storage, and client faults (2-4 per "
                        "case); failures print a --plan replay string")
    p.add_argument("--plan", default=None, metavar="SPEC",
                   help="replay one composite fuzz plan verbatim: "
                        "comma-separated [sid@]net.KIND.DIR:IDX:ACTION, "
                        "[sid@]STORAGE-SITE:IDX:ACTION, and "
                        "client.SITE:IDX:raise tokens")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of a table")
    p.set_defaults(func=_cmd_crashsweep)

    p = sub.add_parser(
        "stats", help="query log-server operational counters")
    p.add_argument("address", metavar="HOST:PORT", nargs="?", default=None,
                   help="one daemon to query (omit with "
                        "--cluster-spec --all)")
    p.add_argument("--cluster-spec", default=None, metavar="PATH",
                   help="placements.json naming the fleet roster")
    p.add_argument("--all", action="store_true",
                   help="query every server in --cluster-spec "
                        "concurrently and print per-server rows plus "
                        "fleet totals")
    p.add_argument("--client-id", default="stats",
                   help="client id for per-client counters such as "
                        "truncated_lsn (default 'stats')")
    p.add_argument("--timeout", type=float, default=5.0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return args.func(args)
        finally:
            profiler.disable()
            print()
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

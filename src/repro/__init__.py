"""repro — reproduction of *Distributed Logging for Transaction Processing*.

Daniels, Spector & Thompson, SIGMOD 1987 (Carnegie Mellon University).

The package implements the paper's replicated-log algorithm and every
substrate its evaluation depends on:

* :mod:`repro.core` — the replicated log, epoch generator, and
  availability analysis (Section 3, Appendix I);
* :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
* :mod:`repro.net` — the simulated local network and the Figure 4-1
  client/server protocol (Section 4.2);
* :mod:`repro.storage` — disk and NVRAM models, the append-forest
  index, and the interleaved log stream (Sections 4.1, 4.3, 5.1);
* :mod:`repro.server` — the log-server node (Section 4);
* :mod:`repro.client` — the transaction-processing client node,
  recovery manager, and log splitting/caching (Sections 2, 5.2);
* :mod:`repro.workload` — ET1 and long-transaction workloads;
* :mod:`repro.baselines` — local duplexed-disk logging, a mirrored
  single server, and unbatched per-record RPC logging;
* :mod:`repro.analysis` — the Section 4.1 capacity model;
* :mod:`repro.harness` — experiment runners for every figure/claim.

Quickstart::

    from repro import quickstart_log

    log, stores = quickstart_log(m=3, n=2)
    lsn = log.write(b"hello, 1987")
    assert log.read(lsn).data == b"hello, 1987"
"""

from __future__ import annotations

from .core import (
    LogRecord,
    LogServerStore,
    ReplicatedIdGenerator,
    ReplicatedLog,
    ReplicationConfig,
    make_generator,
)
from .core.ports import DirectServerPort

__version__ = "1.0.0"

__all__ = [
    "LogRecord",
    "LogServerStore",
    "ReplicatedIdGenerator",
    "ReplicatedLog",
    "ReplicationConfig",
    "make_generator",
    "quickstart_log",
    "__version__",
]


def quickstart_log(
    m: int = 3,
    n: int = 2,
    client_id: str = "client-0",
    delta: int = 1,
) -> tuple[ReplicatedLog, dict[str, LogServerStore]]:
    """Build an initialized in-process replicated log for experiments.

    Creates ``m`` in-memory log-server stores, a replicated epoch
    generator with three representatives, and a client writing ``n``
    copies per record; runs client initialization; and returns the
    ready-to-use log plus the stores (so callers can crash/restart
    servers to explore the algorithm).
    """
    stores = {f"server-{i}": LogServerStore(f"server-{i}") for i in range(m)}
    ports = {sid: DirectServerPort(store) for sid, store in stores.items()}
    log = ReplicatedLog(
        client_id=client_id,
        ports=ports,
        config=ReplicationConfig(total_servers=m, copies=n, delta=delta),
        epoch_source=make_generator(3),
    )
    log.initialize()
    return log, stores

"""Baseline: local disk logging on the processing node itself.

The alternative the paper argues against in Section 1: "logs can be
implemented with data written to duplexed disks on each processing
node".  Two variants:

* :class:`LocalDiskLog` — a single local disk (the configuration the
  Section 5.6 prototype measurement compares remote logging against:
  "remote logging to virtual memory on two remote servers used less
  than twice the elapsed time required for local logging to a single
  disk"); and
* the same class over :class:`~repro.storage.disk.MirroredDisks` —
  duplexed local disks, the traditional production configuration.

The class implements the same backend interface as the replicated log,
so every workload driver runs unchanged on either.
"""

from __future__ import annotations

from ..core.errors import LSNNotWritten
from ..core.records import LogRecord, LSN
from ..sim.kernel import Simulator
from ..sim.stats import MetricSet


class LocalDiskLog:
    """A log on the node's own disk(s); group-commit on force.

    Records are buffered in memory; a force writes all buffered bytes
    in one disk operation (seek + rotational alignment + transfer) —
    group commit, the best case for local logging.  Without NVRAM on a
    workstation, every force pays the rotational latency.
    """

    def __init__(self, sim: Simulator, disk, metrics: MetricSet | None = None,
                 name: str = "local"):
        self.sim = sim
        self.disk = disk
        self.metrics = metrics if metrics is not None else MetricSet()
        self.name = name
        self._records: dict[LSN, LogRecord] = {}
        self._next_lsn: LSN = 1
        self._pending_bytes = 0
        self._durable_through: LSN = 0
        self.forces = 0

    # -- backend interface ---------------------------------------------------

    def log(self, data: bytes, kind: str = "data"):
        lsn = self._next_lsn
        self._next_lsn += 1
        self._records[lsn] = LogRecord(lsn=lsn, data=data, kind=kind)
        self._pending_bytes += len(data)
        return lsn
        yield  # pragma: no cover - generator protocol

    def force(self):
        """Write everything pending to the local disk(s)."""
        start = self.sim.now
        if self._pending_bytes > 0:
            yield from self.disk.force_record(self._pending_bytes)
            self._pending_bytes = 0
        self._durable_through = self._next_lsn - 1
        self.forces += 1
        self.metrics.latency(f"{self.name}.force").observe(self.sim.now - start)

    def read(self, lsn: LSN):
        record = self._records.get(lsn)
        if record is None:
            raise LSNNotWritten(lsn)
        # disk read only if not recent enough to be cached; model the
        # common recovery case (random read) for durable records.
        if lsn <= self._durable_through:
            yield from self.disk.random_read(max(len(record.data), 512))
        return record

    def end_of_log(self) -> LSN:
        return self._next_lsn - 1

    def iter_backward(self, from_lsn: LSN | None = None):
        start = from_lsn if from_lsn is not None else self.end_of_log()
        for lsn in range(start, 0, -1):
            record = self._records.get(lsn)
            if record is not None:
                yield record

    def scan_backward(self, from_lsn: LSN | None = None):
        """Sim-style scan used by the recovery manager."""
        records = list(self.iter_backward(from_lsn))
        return records
        yield  # pragma: no cover

    # -- lifecycle -----------------------------------------------------------

    def crash(self) -> None:
        """Lose the volatile tail: records past the last force vanish."""
        for lsn in [l for l in self._records if l > self._durable_through]:
            del self._records[lsn]
        self._next_lsn = self._durable_through + 1
        self._pending_bytes = 0

    def restart(self):
        return None
        yield  # pragma: no cover

"""Baseline: one RPC per log record (no grouping).

Section 4.1's strawman: "If each log record were written to log servers
with individual remote procedure calls (RPCs) each log server would
have to process about 2400 incoming or outgoing messages per second, a
load that is too high to achieve easily on moderate power processors."

:class:`UnbatchedBackend` wraps a :class:`~repro.client.SimLogClient`
and forces after *every* record, producing exactly that per-record
request/ack pattern.  The capacity and ablation experiments compare its
message rates and CPU consumption against the grouped interface.
"""

from __future__ import annotations

from ..client.log_client import SimLogClient
from ..core.records import LSN


class UnbatchedBackend:
    """Backend adapter that defeats grouping: force per record."""

    def __init__(self, client: SimLogClient):
        self.client = client

    def log(self, data: bytes, kind: str = "data"):
        lsn = yield from self.client.log(data, kind)
        yield from self.client.force()
        return lsn

    def force(self):
        yield from self.client.force()

    def read(self, lsn: LSN):
        record = yield from self.client.read(lsn)
        return record

    def end_of_log(self) -> LSN:
        return self.client.end_of_log()

    def crash(self) -> None:
        self.client.crash()

    def restart(self):
        yield from self.client.restart()

    def scan_backward(self, from_lsn: LSN | None = None):
        from ..client.backends import SimLogBackend

        records = yield from SimLogBackend(self.client).scan_backward(from_lsn)
        return records

"""Baseline: one remote log server with mirrored disks.

The configuration Sections 3.2 and 5.5 compare replicated logging
against: all redundancy lives on a single server node ("a single log
server that stores multiple copies of data"), so ReadLog, WriteLog and
client initialization are all available exactly when that one server is
up (probability ``1 − p``), and the server "could be a coordinator for
an optimized commit protocol" — the one argument in its favour.

:func:`build_mirrored_server_system` assembles the configuration from
the same parts as the replicated system: one :class:`SimLogServer`
whose stream is written to duplexed disks, and a client with
``M = N = 1``.
"""

from __future__ import annotations

from ..client.log_client import SimLogClient
from ..core.config import ReplicationConfig
from ..core.epoch import LocalIdGenerator
from ..server.log_server import SimLogServer
from ..sim.kernel import Simulator
from ..sim.stats import MetricSet
from ..storage.disk import SLOW_1987_DISK, DiskParams, MirroredDisks


def build_mirrored_server_system(
    sim: Simulator,
    network,
    client_id: str = "client-0",
    server_id: str = "mirror-server",
    disk_params: DiskParams = SLOW_1987_DISK,
    metrics: MetricSet | None = None,
    delta: int = 8,
) -> tuple[SimLogClient, SimLogServer]:
    """One mirrored-disk server plus a single-copy client over it."""
    metrics = metrics if metrics is not None else MetricSet()
    disks = MirroredDisks(sim, disk_params, name=f"{server_id}.disks")
    server = SimLogServer(
        sim, network, server_id, metrics=metrics, disk=disks,
    )
    client = SimLogClient(
        sim, network, client_id,
        server_ids=[server_id],
        config=ReplicationConfig(total_servers=1, copies=1, delta=delta),
        epoch_source=LocalIdGenerator(),
        metrics=metrics,
    )
    return client, server

"""Baselines the paper compares replicated logging against.

* :class:`~repro.baselines.local_log.LocalDiskLog` — logging to the
  processing node's own (single or duplexed) disks;
* :class:`~repro.baselines.unbatched.UnbatchedBackend` — one RPC per
  log record (the Section 4.1 strawman);
* :func:`~repro.baselines.mirrored_server.build_mirrored_server_system`
  — one remote server with mirrored disks.
"""

from .local_log import LocalDiskLog
from .mirrored_server import build_mirrored_server_system
from .unbatched import UnbatchedBackend

__all__ = [
    "LocalDiskLog",
    "UnbatchedBackend",
    "build_mirrored_server_system",
]

"""Metric collection for simulation experiments.

Three collectors cover the quantities the paper reports:

* :class:`Counter` — event counts and rates (messages/second,
  RPCs/second, bytes logged);
* :class:`LatencySample` — latency distributions with mean and
  percentiles (log-force response times);
* :class:`TimeWeighted` — time-averaged levels (queue depths, buffer
  occupancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotone event counter with rate reporting."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.count += 1
        self.total += amount

    def rate(self, elapsed: float) -> float:
        """Total per unit time over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.total / elapsed

    def count_rate(self, elapsed: float) -> float:
        """Occurrences per unit time over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed


class LatencySample:
    """A reservoir of latency observations with summary statistics."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def stdev(self) -> float:
        n = len(self._values)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self._values) / (n - 1))

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) by linear interpolation."""
        if not self._values:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self._values)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def p50(self) -> float:
        return self.percentile(0.50)

    def p95(self) -> float:
        return self.percentile(0.95)

    def p99(self) -> float:
        return self.percentile(0.99)

    def max(self) -> float:
        return max(self._values) if self._values else 0.0


class TimeWeighted:
    """A level integrated over time (mean queue depth, occupancy)."""

    def __init__(self, name: str = "level", initial: float = 0.0, start: float = 0.0):
        self.name = name
        self._level = initial
        self._last_time = start
        self._integral = 0.0
        self._max = initial

    def set(self, level: float, now: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._integral += self._level * (now - self._last_time)
        self._level = level
        self._last_time = now
        self._max = max(self._max, level)

    def adjust(self, delta: float, now: float) -> None:
        self.set(self._level + delta, now)

    @property
    def current(self) -> float:
        return self._level

    @property
    def peak(self) -> float:
        return self._max

    def mean(self, now: float) -> float:
        if now <= 0:
            return self._level
        integral = self._integral + self._level * (now - self._last_time)
        return integral / now


@dataclass
class MetricSet:
    """A named bag of collectors, shared by the nodes of one experiment."""

    counters: dict[str, Counter] = field(default_factory=dict)
    latencies: dict[str, LatencySample] = field(default_factory=dict)
    levels: dict[str, TimeWeighted] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def latency(self, name: str) -> LatencySample:
        if name not in self.latencies:
            self.latencies[name] = LatencySample(name)
        return self.latencies[name]

    def level(self, name: str, start: float = 0.0) -> TimeWeighted:
        if name not in self.levels:
            self.levels[name] = TimeWeighted(name, start=start)
        return self.levels[name]

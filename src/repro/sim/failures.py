"""Failure injection: independent crash/repair schedules per node.

Section 3.2's analysis assumes "log server nodes fail independently and
are unavailable with probability p".  Two models realize that:

* :class:`UpDownProcess` — an alternating-renewal process with
  exponential up and down times; its long-run unavailability is
  ``mttr / (mtbf + mttr)``, so experiments can pick (mtbf, mttr) to hit
  the paper's ``p = 0.05``; and
* :func:`bernoulli_outage_sample` — an instantaneous snapshot where
  each node is down independently with probability ``p``, used by the
  Monte-Carlo validation of the closed-form availability curves.

On top of those, :class:`ClusterChurn` drives many targets — log
servers, generator-state representatives, LAN links — through
independent schedules inside one simulation, integrating exactly how
much time the cluster spent with each number of targets down, and
:class:`LinkDegrader` adapts a LAN into a :class:`Crashable` whose
"crash" is message loss rather than a full partition.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping, Protocol, Sequence

from .kernel import Interrupt, Simulator
from .rng import RngRegistry


class Crashable(Protocol):
    """A node that can be taken down and brought back (state survives)."""

    def crash(self) -> None: ...
    def restart(self) -> None: ...


def unavailability(mtbf: float, mttr: float) -> float:
    """Long-run probability of being down for an up/down process."""
    if mtbf <= 0 or mttr < 0:
        raise ValueError("mtbf must be positive and mttr non-negative")
    return mttr / (mtbf + mttr)


def mttr_for_unavailability(mtbf: float, p: float) -> float:
    """The repair time making long-run unavailability equal ``p``.

    ``p = 0`` yields ``mttr = 0``, which no :class:`UpDownProcess` will
    accept — an always-up node needs no injector at all (see
    :meth:`UpDownProcess.for_unavailability`).
    """
    if not 0 <= p < 1:
        raise ValueError("p must be in [0, 1)")
    return mtbf * p / (1 - p)


def node_is_up(node: object) -> bool | None:
    """Best-effort probe of a :class:`Crashable`'s current state.

    The repo's crashables expose their state under different names:
    ``available`` (stores, generator representatives), ``up`` (LANs,
    :class:`LinkDegrader`), or ``crashed`` (simulated servers).
    Returns ``None`` when the node exposes none of them.
    """
    for attr, up_means in (("available", True), ("up", True),
                           ("crashed", False)):
        value = getattr(node, attr, None)
        if isinstance(value, bool):
            return value is up_means
    return None


class UpDownProcess:
    """Drives a :class:`Crashable` through exponential up/down cycles."""

    def __init__(
        self,
        sim: Simulator,
        target: Crashable,
        mtbf: float,
        mttr: float,
        rng: random.Random,
        on_change: Callable[[bool], None] | None = None,
    ):
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        if mttr <= 0:
            raise ValueError(
                f"mttr must be positive, got {mttr}; an unavailability "
                "of p = 0 means 'no injector' — do not construct an "
                "UpDownProcess for an always-up node"
            )
        self.sim = sim
        self.target = target
        self.mtbf = mtbf
        self.mttr = mttr
        self.rng = rng
        self.on_change = on_change
        self.crashes = 0
        self.down_time = 0.0
        #: True while the schedule holds the target down.
        self.target_down = False
        self._down_since = 0.0
        self.process = sim.spawn(self._run(), name="up-down")

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.rng.expovariate(1.0 / self.mtbf))
                self.target.crash()
                self.crashes += 1
                self.target_down = True
                self._down_since = self.sim.now
                if self.on_change is not None:
                    self.on_change(False)
                yield self.sim.timeout(self.rng.expovariate(1.0 / self.mttr))
                self._repair()
        except Interrupt:
            # stop() while the target is down: bring it back before
            # ending the schedule, unless someone already restarted it
            # (the probe keeps a redundant restart() from re-running a
            # server's crash scan on a healthy node).
            if self.target_down:
                if node_is_up(self.target) is not True:
                    self._repair()
                else:
                    self.down_time += self.sim.now - self._down_since
                    self.target_down = False

    def _repair(self) -> None:
        self.target.restart()
        self.down_time += self.sim.now - self._down_since
        self.target_down = False
        if self.on_change is not None:
            self.on_change(True)

    def stop(self) -> None:
        """End the schedule, leaving the target up."""
        if not self.process.triggered:
            self.process.interrupt("stop failure injection")

    @classmethod
    def for_unavailability(
        cls,
        sim: Simulator,
        target: Crashable,
        mtbf: float,
        p: float,
        rng: random.Random,
        on_change: Callable[[bool], None] | None = None,
    ) -> "UpDownProcess | None":
        """An injector tuned to long-run unavailability ``p``.

        Returns ``None`` for ``p = 0`` — an always-up node has no
        failure schedule.
        """
        if p == 0:
            return None
        return cls(sim, target, mtbf, mttr_for_unavailability(mtbf, p),
                   rng, on_change)


class LinkDegrader:
    """A :class:`Crashable` view of a LAN that fails by *losing messages*.

    ``crash()`` raises the LAN's loss probability to ``degraded_loss``
    (``1.0`` models a partition that still accepts sends); ``restart()``
    restores the original probability.  This lets one churn schedule
    drive network degradation alongside server crashes.
    """

    def __init__(self, lan, degraded_loss: float = 1.0):
        if not 0 < degraded_loss <= 1:
            raise ValueError("degraded_loss must be in (0, 1]")
        self.lan = lan
        self.degraded_loss = degraded_loss
        self._healthy_loss = lan.loss_prob
        self.up = True

    def crash(self) -> None:
        if self.up:
            self._healthy_loss = self.lan.loss_prob
            self.lan.loss_prob = self.degraded_loss
            self.up = False

    def restart(self) -> None:
        if not self.up:
            self.lan.loss_prob = self._healthy_loss
            self.up = True


class ClusterChurn:
    """Concurrent up/down schedules over a named group of targets.

    One coordinator owns an :class:`UpDownProcess` per target, all
    seeded from one master seed (a named stream per target, so adding a
    target never perturbs the others' schedules).  It integrates, in
    simulated time, how long the group spent with exactly ``d`` targets
    down — the measurement the §3.2 availability comparison needs.
    """

    def __init__(
        self,
        sim: Simulator,
        targets: Mapping[str, Crashable],
        mtbf: float,
        mttr: float,
        seed: int = 0,
        name: str = "churn",
        on_change: Callable[[str, bool], None] | None = None,
    ):
        if not targets:
            raise ValueError("ClusterChurn needs at least one target")
        self.sim = sim
        self.name = name
        self.on_change = on_change
        self.down: set[str] = set()
        self._durations: dict[int, float] = {}
        self._last_change = sim.now
        self._start = sim.now
        registry = RngRegistry(seed)
        self.injectors: dict[str, UpDownProcess] = {
            target_id: UpDownProcess(
                sim, target, mtbf, mttr,
                rng=registry.stream(f"{name}.{target_id}"),
                on_change=self._observer(target_id),
            )
            for target_id, target in targets.items()
        }

    def _observer(self, target_id: str) -> Callable[[bool], None]:
        def observe(up: bool) -> None:
            self._account()
            if up:
                self.down.discard(target_id)
            else:
                self.down.add(target_id)
            if self.on_change is not None:
                self.on_change(target_id, up)
        return observe

    def _account(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            d = len(self.down)
            self._durations[d] = self._durations.get(d, 0.0) + elapsed
        self._last_change = now

    def stop(self) -> None:
        """Stop every schedule; targets come back up (see UpDownProcess)."""
        for injector in self.injectors.values():
            injector.stop()

    # -- measurement -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return self.sim.now - self._start

    def down_histogram(self) -> dict[int, float]:
        """Simulated seconds spent with exactly ``d`` targets down."""
        self._account()
        return dict(self._durations)

    def fraction_time_at_most_down(self, max_down: int) -> float:
        """Fraction of elapsed time with no more than ``max_down`` down.

        With ``max_down = M − N`` this is the measured WriteLog
        availability; with ``N − 1`` the measured client-initialization
        availability (§3.2).
        """
        total = self.elapsed
        if total <= 0:
            return 1.0
        good = sum(seconds for d, seconds in self.down_histogram().items()
                   if d <= max_down)
        return good / total

    def crashes(self) -> int:
        return sum(inj.crashes for inj in self.injectors.values())


def bernoulli_outage_sample(
    nodes: Sequence[Crashable], p: float, rng: random.Random
) -> list[bool]:
    """Crash each node independently with probability ``p``.

    Returns the up/down vector applied (True = up).  ``crash()`` /
    ``restart()`` are only called when the node's state actually
    changes — restarting an already-up log server would re-run its
    crash scan and reset rebuilt state.  Callers restore with
    :func:`restore_all`.
    """
    states: list[bool] = []
    for node in nodes:
        up = rng.random() >= p
        currently_up = node_is_up(node)
        if up:
            if currently_up is not True:
                node.restart()
        else:
            if currently_up is not False:
                node.crash()
        states.append(up)
    return states


def restore_all(nodes: Sequence[Crashable]) -> None:
    """Bring every node that is down back up."""
    for node in nodes:
        if node_is_up(node) is not True:
            node.restart()

"""Failure injection: independent crash/repair schedules per node.

Section 3.2's analysis assumes "log server nodes fail independently and
are unavailable with probability p".  Two models realize that:

* :class:`UpDownProcess` — an alternating-renewal process with
  exponential up and down times; its long-run unavailability is
  ``mttr / (mtbf + mttr)``, so experiments can pick (mtbf, mttr) to hit
  the paper's ``p = 0.05``; and
* :func:`bernoulli_outage_sample` — an instantaneous snapshot where
  each node is down independently with probability ``p``, used by the
  Monte-Carlo validation of the closed-form availability curves.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol, Sequence

from .kernel import Simulator


class Crashable(Protocol):
    """A node that can be taken down and brought back (state survives)."""

    def crash(self) -> None: ...
    def restart(self) -> None: ...


def unavailability(mtbf: float, mttr: float) -> float:
    """Long-run probability of being down for an up/down process."""
    if mtbf <= 0 or mttr < 0:
        raise ValueError("mtbf must be positive and mttr non-negative")
    return mttr / (mtbf + mttr)


def mttr_for_unavailability(mtbf: float, p: float) -> float:
    """The repair time making long-run unavailability equal ``p``."""
    if not 0 <= p < 1:
        raise ValueError("p must be in [0, 1)")
    return mtbf * p / (1 - p)


class UpDownProcess:
    """Drives a :class:`Crashable` through exponential up/down cycles."""

    def __init__(
        self,
        sim: Simulator,
        target: Crashable,
        mtbf: float,
        mttr: float,
        rng: random.Random,
        on_change: Callable[[bool], None] | None = None,
    ):
        self.sim = sim
        self.target = target
        self.mtbf = mtbf
        self.mttr = mttr
        self.rng = rng
        self.on_change = on_change
        self.crashes = 0
        self.down_time = 0.0
        self.process = sim.spawn(self._run(), name="up-down")

    def _run(self):
        while True:
            yield self.sim.timeout(self.rng.expovariate(1.0 / self.mtbf))
            self.target.crash()
            self.crashes += 1
            if self.on_change is not None:
                self.on_change(False)
            down_for = self.rng.expovariate(1.0 / self.mttr)
            self.down_time += down_for
            yield self.sim.timeout(down_for)
            self.target.restart()
            if self.on_change is not None:
                self.on_change(True)

    def stop(self) -> None:
        self.process.interrupt("stop failure injection")


def bernoulli_outage_sample(
    nodes: Sequence[Crashable], p: float, rng: random.Random
) -> list[bool]:
    """Crash each node independently with probability ``p``.

    Returns the up/down vector applied (True = up).  Callers restore
    with :func:`restore_all`.
    """
    states: list[bool] = []
    for node in nodes:
        up = rng.random() >= p
        if up:
            node.restart()
        else:
            node.crash()
        states.append(up)
    return states


def restore_all(nodes: Sequence[Crashable]) -> None:
    """Bring every node back up."""
    for node in nodes:
        node.restart()

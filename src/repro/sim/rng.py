"""Named, seeded random streams.

Every stochastic component (arrivals, packet loss, failure schedules,
workload data) draws from its own named stream derived from one master
seed, so adding a new source of randomness never perturbs existing
ones, and every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """A factory of independent ``random.Random`` streams.

    Streams are keyed by name; the stream seed is a stable hash of the
    master seed and the name.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on the named stream."""
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def coin(self, name: str, probability: float) -> bool:
        """True with the given probability."""
        return self.stream(name).random() < probability

"""Queueing resources for the simulation kernel.

Two primitives cover everything the log-server and client models need:

* :class:`Resource` — a FIFO server with fixed capacity (a CPU, a disk
  arm) that tracks busy time so experiments can report utilization, the
  quantity Section 4.1 reasons about; and
* :class:`Channel` — an unbounded FIFO of messages with blocking
  ``get``, used for process mailboxes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from .kernel import Event, Simulator


@dataclass(slots=True)
class _Grant:
    event: Event


class Resource:
    """A FIFO resource with ``capacity`` concurrent holders.

    Usage from a process::

        grant = yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    or, for the dominant pattern of "hold for a fixed service time",
    the one-liner ``yield from resource.use(service_time)``.

    Busy time is integrated continuously, so ``utilization(t0, t1)``
    reports the fraction of capacity-time consumed — directly
    comparable with the paper's CPU- and disk-utilization estimates.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[_Grant] = deque()
        # utilization accounting
        self._busy_integral = 0.0
        self._last_change = sim.now
        self.total_served = 0
        self._wait_total = 0.0
        self._wait_count = 0

    # -- accounting -------------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, t0: float = 0.0, t1: float | None = None) -> float:
        """Fraction of capacity-time busy over ``[t0, t1]``.

        ``t0`` must be 0 for exact results (the integral is cumulative);
        passing a later ``t0`` subtracts nothing and is rejected to
        avoid silent misuse.
        """
        if t0 != 0.0:
            raise ValueError("utilization is tracked cumulatively from t=0")
        self._account()
        end = t1 if t1 is not None else self.sim.now
        if end <= 0:
            return 0.0
        return self._busy_integral / (end * self.capacity)

    def busy_integral(self) -> float:
        """Cumulative busy capacity-time; diff two snapshots to get the
        utilization of a measurement window."""
        self._account()
        return self._busy_integral

    def mean_wait(self) -> float:
        """Mean queueing delay experienced by granted acquisitions."""
        if self._wait_count == 0:
            return 0.0
        return self._wait_total / self._wait_count

    # -- acquisition -------------------------------------------------------

    def acquire(self) -> Event:
        """An event that succeeds when a unit of the resource is granted.

        The event's value is the time spent queueing.
        """
        ev = self.sim.event(f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self._note_wait(0.0)
            ev.succeed(0.0)
        else:
            grant = _Grant(ev)
            # Stash enqueue time on the event for wait accounting.
            ev._value = self.sim.now  # reused as enqueue timestamp
            self._queue.append(grant)
        return ev

    def release(self) -> None:
        """Return one unit; hands it to the queue head if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            waited = self.sim.now - grant.event._value
            grant.event._value = None
            self._note_wait(waited)
            self.total_served += 0  # grant below counts on completion
            grant.event.succeed(waited)
            # _in_use stays the same: the unit moves to the next holder.
            self._account()
        else:
            self._account()
            self._in_use -= 1

    def _note_wait(self, waited: float) -> None:
        self._wait_total += waited
        self._wait_count += 1

    def use(self, duration: float):
        """Acquire, hold for ``duration``, release.  ``yield from`` me.

        Returns the queueing delay, so callers can separate waiting
        from service in latency breakdowns.
        """
        waited = yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()
            self.total_served += 1
        return waited


class Channel:
    """An unbounded FIFO message queue with blocking ``get``.

    ``put`` never blocks (the paper's servers shed load explicitly
    rather than by back-pressure, Section 4.2).  ``get`` returns an
    event yielding the next message.
    """

    def __init__(self, sim: Simulator, name: str = "channel"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0
        self.total_got = 0
        self.max_depth = 0
        #: optional callback invoked whenever a message is consumed;
        #: the transport uses it to grant flow-control allocation.
        self.consume_hook = None

    def put(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
            self._note_consumed()
            return
        self._items.append(item)
        self.max_depth = max(self.max_depth, len(self._items))

    def get(self) -> Event:
        ev = self.sim.event(f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
            self._note_consumed()
        else:
            self._getters.append(ev)
        return ev

    def _note_consumed(self) -> None:
        self.total_got += 1
        if self.consume_hook is not None:
            self.consume_hook()

    def __len__(self) -> int:
        return len(self._items)

"""Queueing resources for the simulation kernel.

Two primitives cover everything the log-server and client models need:

* :class:`Resource` — a FIFO server with fixed capacity (a CPU, a disk
  arm) that tracks busy time so experiments can report utilization, the
  quantity Section 4.1 reasons about; and
* :class:`Channel` — an unbounded FIFO of messages with blocking
  ``get``, used for process mailboxes.

Hot-path contract (mirrors the kernel's pooling caveat): the events
returned by ``Channel.get`` and ``Resource.acquire`` must be yielded
immediately — ``msg = yield ch.get()`` — not stored, re-yielded later,
or combined with ``any_of``/``all_of``.  The non-blocking paths return
a shared pre-triggered event per channel/resource (consumed inline by
the yielding process with no allocation and no heap traffic), and
blocked waiters are recycled through the kernel's event free list
after delivery.  Every use in this repository follows the contract.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .kernel import Event, Simulator


def _wake_waiter(ev: Event, value: Any) -> None:
    """Deliver ``value`` to a queued waiter event.

    The dominant case — a sole waiting process in the ``_proc`` slot —
    is handed to the kernel as a direct-resume heap entry (``None``
    callback), which resumes the process at the pop and recycles the
    event object.  Demoted or not-yet-waited events fall back to the
    general trigger and are not recycled.
    """
    if ev._proc is not None:
        ev._value = value
        sim = ev.sim
        seq = sim._seq + 1
        sim._seq = seq
        sim._ready.append((seq, None, ev))
    else:
        ev.succeed(value)


def _pooled_event(sim: Simulator, name: str) -> Event:
    """A fresh untriggered event, reusing the kernel free list."""
    pool = sim._event_pool
    if pool:
        ev = pool.pop()
        ev.name = name
        return ev
    return Event(sim, name)


class Resource:
    """A FIFO resource with ``capacity`` concurrent holders.

    Usage from a process::

        grant = yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    or, for the dominant pattern of "hold for a fixed service time",
    the one-liner ``yield from resource.use(service_time)``.

    Busy time is integrated continuously, so ``utilization(t0, t1)``
    reports the fraction of capacity-time consumed — directly
    comparable with the paper's CPU- and disk-utilization estimates.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: precomputed grant-event name (acquire() is a hot path; an
        #: f-string per call shows up in profiles)
        self._acquire_name = name + ".acquire"
        #: shared grant event for the uncontended case: always
        #: triggered, value always 0.0 (no queueing delay)
        self._ready_ev = Event(sim, self._acquire_name)
        self._ready_ev._triggered = True
        self._ready_ev._value = 0.0
        self._in_use = 0
        self._queue: deque[Event] = deque()
        # utilization accounting
        self._busy_integral = 0.0
        self._last_change = sim.now
        self.total_served = 0
        self._wait_total = 0.0
        self._wait_count = 0

    # -- accounting -------------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, t0: float = 0.0, t1: float | None = None) -> float:
        """Fraction of capacity-time busy over ``[t0, t1]``.

        ``t0`` must be 0 for exact results (the integral is cumulative);
        passing a later ``t0`` subtracts nothing and is rejected to
        avoid silent misuse.
        """
        if t0 != 0.0:
            raise ValueError("utilization is tracked cumulatively from t=0")
        self._account()
        end = t1 if t1 is not None else self.sim.now
        if end <= 0:
            return 0.0
        return self._busy_integral / (end * self.capacity)

    def busy_integral(self) -> float:
        """Cumulative busy capacity-time; diff two snapshots to get the
        utilization of a measurement window."""
        self._account()
        return self._busy_integral

    def mean_wait(self) -> float:
        """Mean queueing delay experienced by granted acquisitions."""
        if self._wait_count == 0:
            return 0.0
        return self._wait_total / self._wait_count

    # -- acquisition -------------------------------------------------------

    def acquire(self) -> Event:
        """An event that succeeds when a unit of the resource is granted.

        The event's value is the time spent queueing.  Yield it
        immediately (see the module hot-path contract).
        """
        if self._in_use < self.capacity:
            # inlined _account()/_note_wait(0): granting an idle unit
            # is the dominant case and sits on the hot path.
            now = self.sim.now
            self._busy_integral += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use += 1
            self._wait_count += 1
            return self._ready_ev
        ev = _pooled_event(self.sim, self._acquire_name)
        # Stash enqueue time on the event for wait accounting.
        ev._value = self.sim.now  # reused as enqueue timestamp
        self._queue.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; hands it to the queue head if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            ev = self._queue.popleft()
            waited = self.sim.now - ev._value
            self._note_wait(waited)
            _wake_waiter(ev, waited)
            # _in_use stays the same: the unit moves to the next holder.
            self._account()
        else:
            # _account() inlined: the uncontended release is on the
            # per-packet hot path.
            now = self.sim.now
            self._busy_integral += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use -= 1

    def _note_wait(self, waited: float) -> None:
        self._wait_total += waited
        self._wait_count += 1

    def use(self, duration: float):
        """Acquire, hold for ``duration``, release.  ``yield from`` me.

        Returns the queueing delay, so callers can separate waiting
        from service in latency breakdowns.
        """
        waited = yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()
            self.total_served += 1
        return waited


class Channel:
    """An unbounded FIFO message queue with blocking ``get``.

    ``put`` never blocks (the paper's servers shed load explicitly
    rather than by back-pressure, Section 4.2).  ``get`` returns an
    event yielding the next message; yield it immediately (see the
    module hot-path contract).
    """

    def __init__(self, sim: Simulator, name: str = "channel"):
        self.sim = sim
        self.name = name
        self._get_name = name + ".get"
        #: shared get event for the non-empty case; its value is
        #: rewritten per get and consumed inline by the yielder.
        self._ready_ev = Event(sim, self._get_name)
        self._ready_ev._triggered = True
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0
        self.total_got = 0
        self.max_depth = 0
        #: optional callback invoked whenever a message is consumed;
        #: the transport uses it to grant flow-control allocation.
        self.consume_hook = None
        #: optional synchronous receiver: when set, ``put`` hands the
        #: item straight to this callable instead of queueing it.  The
        #: network endpoint demultiplexer uses it — per-packet demux is
        #: entirely non-blocking, so routing in the delivery event
        #: avoids one kernel event and one process resumption per
        #: packet received.
        self.receiver = None

    def put(self, item: Any) -> None:
        self.total_put += 1
        receiver = self.receiver
        if receiver is not None:
            self.total_got += 1
            receiver(item)
            return
        if self._getters:
            # inlined _wake_waiter/_note_consumed (hottest transport path)
            ev = self._getters.popleft()
            if ev._proc is not None:
                ev._value = item
                sim = self.sim
                seq = sim._seq + 1
                sim._seq = seq
                sim._ready.append((seq, None, ev))
            else:
                ev.succeed(item)
            self.total_got += 1
            if self.consume_hook is not None:
                self.consume_hook()
            return
        items = self._items
        items.append(item)
        if len(items) > self.max_depth:
            self.max_depth = len(items)

    def get(self) -> Event:
        items = self._items
        if items:
            # shared pre-triggered event: the yielding process
            # continues inline — no allocation, no heap round-trip.
            ev = self._ready_ev
            ev._value = items.popleft()
            self.total_got += 1
            if self.consume_hook is not None:
                self.consume_hook()
            return ev
        pool = self.sim._event_pool
        if pool:
            ev = pool.pop()
            ev.name = self._get_name
        else:
            ev = Event(self.sim, self._get_name)
        self._getters.append(ev)
        return ev

    def _note_consumed(self) -> None:
        self.total_got += 1
        if self.consume_hook is not None:
            self.consume_hook()

    def __len__(self) -> int:
        return len(self._items)

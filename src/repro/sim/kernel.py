"""A deterministic discrete-event simulation kernel.

All timing results in this reproduction come from simulated time, not
wall-clock threads: processes are Python generators that ``yield``
events, and the kernel advances a virtual clock from event to event.
Runs are fully deterministic given a seed, which keeps every benchmark
reproducible.

The design is a deliberately small subset of the SimPy style:

* :class:`Simulator` owns the clock and the event heap;
* :class:`Event` is a one-shot occurrence that processes wait on;
* :class:`Process` wraps a generator and is itself an event that
  triggers when the generator finishes (so processes can join);
* ``sim.timeout(d)`` is an event that triggers ``d`` time units later.

Example::

    sim = Simulator()

    def pinger(sim):
        for _ in range(3):
            yield sim.timeout(1.0)

    sim.spawn(pinger(sim))
    sim.run()
    assert sim.now == 3.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

#: What a simulation process generator yields: events to wait on.
ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(Exception):
    """The kernel detected an inconsistent use of its primitives."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence carrying a value or an exception.

    Processes wait by yielding the event; callbacks may also be
    attached directly.  Once triggered (succeeded or failed) the value
    is frozen; waiting on an already-triggered event resumes the waiter
    immediately (at the current simulated time).
    """

    __slots__ = ("sim", "_value", "_exc", "_triggered", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiters receive the exception thrown at their yield point.
        """
        self._trigger(None, exc)
        return self

    def _trigger(self, value: Any, exc: BaseException | None) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim._schedule_call(callback, self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback runs at the
        current simulated time (still through the event queue, so
        ordering stays deterministic).
        """
        if self._triggered:
            self.sim._schedule_call(callback, self)
        else:
            self._callbacks.append(callback)


class Process(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`Event` objects.  The process
    is itself an event: it succeeds with the generator's return value,
    or fails with the exception that escaped the generator.  Other
    processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        self._interrupts: list[Interrupt] = []
        sim._schedule_call(self._resume, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a finished process is a no-op, matching the usual
        "cancel if still running" usage.
        """
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            # Detach from the event we were waiting on; resume with the
            # interrupt instead.  The original event may still trigger
            # later; we simply no longer care.
            try:
                waiting._callbacks.remove(self._resume)
            except ValueError:
                pass
            self.sim._schedule_call(self._resume, None)

    def _resume(self, event: Event | None) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                target = self._generator.throw(interrupt)
            elif event is not None and event._exc is not None:
                target = self._generator.throw(event._exc)
            else:
                target = self._generator.send(
                    event._value if event is not None else None
                )
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process quietly:
            # this is the normal way to cancel background daemons.
            self._value = exc.cause
            if not self.triggered:
                self.succeed(exc.cause)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            self.sim.failed_processes.append(self)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The event loop: a clock plus a heap of pending callbacks."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[Event | None], None], Event | None]] = []
        self._seq = 0
        self._processes: list[Process] = []
        #: processes that died with an unhandled exception; experiments
        #: assert this stays empty so failures never pass silently.
        self.failed_processes: list[Process] = []

    # -- event construction ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        ev = Event(self, name)
        self._schedule_at(self.now + delay, lambda _e: ev.succeed(value), None)
        return ev

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        proc = Process(self, generator, name)
        self._processes.append(proc)
        return proc

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event that succeeds when every input event has succeeded.

        Its value is the list of input values in input order.  Fails
        fast with the first failure.
        """
        events = list(events)
        done = self.event(name)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining
        state = {"left": remaining, "failed": False}

        def make_callback(index: int):
            def on_trigger(ev: Event) -> None:
                if done.triggered:
                    return
                if ev._exc is not None:
                    state["failed"] = True
                    done.fail(ev._exc)
                    return
                values[index] = ev._value
                state["left"] -= 1
                if state["left"] == 0:
                    done.succeed(values)
            return on_trigger

        for i, ev in enumerate(events):
            ev.add_callback(make_callback(i))
        return done

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """An event that mirrors the first input event to trigger."""
        events = list(events)
        done = self.event(name)

        def on_trigger(ev: Event) -> None:
            if done.triggered:
                return
            if ev._exc is not None:
                done.fail(ev._exc)
            else:
                done.succeed(ev._value)

        for ev in events:
            ev.add_callback(on_trigger)
        return done

    # -- scheduling internals ----------------------------------------------

    def _schedule_call(
        self, callback: Callable[[Event | None], None], event: Event | None
    ) -> None:
        self._schedule_at(self.now, callback, event)

    def _schedule_at(
        self,
        when: float,
        callback: Callable[[Event | None], None],
        event: Event | None,
    ) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, callback, event))

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending callback; return False if none remain."""
        if not self._heap:
            return False
        when, _seq, callback, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        callback(event)
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the final simulated time.  With ``until`` set, the
        clock is advanced exactly to ``until`` even if the last event
        fires earlier, so utilization denominators are well defined.
        """
        if until is None:
            while self.step():
                pass
            return self.now
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = max(self.now, until)
        return self.now

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

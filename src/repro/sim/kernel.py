"""A deterministic discrete-event simulation kernel.

All timing results in this reproduction come from simulated time, not
wall-clock threads: processes are Python generators that ``yield``
events, and the kernel advances a virtual clock from event to event.
Runs are fully deterministic given a seed, which keeps every benchmark
reproducible.

The design is a deliberately small subset of the SimPy style:

* :class:`Simulator` owns the clock and the event heap;
* :class:`Event` is a one-shot occurrence that processes wait on;
* :class:`Process` wraps a generator and is itself an event that
  triggers when the generator finishes (so processes can join);
* ``sim.timeout(d)`` is an event that triggers ``d`` time units later.

Example::

    sim = Simulator()

    def pinger(sim):
        for _ in range(3):
            yield sim.timeout(1.0)

    sim.spawn(pinger(sim))
    sim.run()
    assert sim.now == 3.0

Hot-path design (the simulator is the binding constraint on every
scaling experiment, so the inner loop is deliberately low-level):

* **Timeout fast path** — ``timeout()`` pushes a single heap entry at
  creation (callback slot ``None`` marks it).  When a process is the
  sole waiter, the pop resumes the process directly: no per-yield
  ``Event`` allocation, no callback list, no second heap round-trip.
  Consumed timeouts are recycled through a free list.
* **Inline continuation** — a process that yields an already-triggered
  event (a non-empty channel, an uncontended resource) is resumed
  immediately inside its own ``_resume`` loop instead of bouncing
  through the heap.
* **Lazy callback lists** — events allocate their callback list only
  when a second waiter actually appears.
* The ``run()`` loop binds the heap and ``heappop`` to locals.

Heap order is (time, seq): seq is assigned at *schedule* time, so
same-time entries fire in schedule order and runs stay deterministic.

Pooling caveat: a recycled timeout object must not be inspected after
the yield that consumed it resumes (reading ``.value``/``.triggered``
afterwards may observe a reused object).  Code in this repository
always yields timeouts inline — ``yield sim.timeout(d)`` — or wraps
them in ``any_of``/``all_of`` (which pins them via callbacks and
disables pooling for that object), so the constraint is structural.
"""

from __future__ import annotations

import gc

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable

#: What a simulation process generator yields: events to wait on.
ProcessGenerator = Generator["Event", Any, Any]

def _make_null_event() -> "Event":
    ev = object.__new__(Event)
    ev._value = None
    ev._exc = None
    ev._triggered = True
    return ev


class SimulationError(Exception):
    """The kernel detected an inconsistent use of its primitives."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence carrying a value or an exception.

    Processes wait by yielding the event; callbacks may also be
    attached directly.  Once triggered (succeeded or failed) the value
    is frozen; waiting on an already-triggered event resumes the waiter
    immediately (at the current simulated time).
    """

    __slots__ = ("sim", "_value", "_exc", "_triggered", "_callbacks", "_proc",
                 "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        #: lazily allocated — most events only ever have one waiter,
        #: and process waiters attach through ``_proc`` instead.
        self._callbacks: list[Callable[["Event"], None]] | None = None
        #: the resume hook of a single waiting process (the dominant
        #: case); any further waiter demotes it into ``_callbacks``.
        #: Invariant: ``_proc`` set ⟹ ``_callbacks`` empty.
        self._proc: Callable[["Event"], None] | None = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiters receive the exception thrown at their yield point.
        """
        self._trigger(None, exc)
        return self

    def _trigger(self, value: Any, exc: BaseException | None) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        proc = self._proc
        if proc is not None:
            self._proc = None
            sim = self.sim
            seq = sim._seq + 1
            sim._seq = seq
            sim._ready.append((seq, proc, self))
            return
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = None
            sim = self.sim
            ready = sim._ready
            seq = sim._seq
            for callback in callbacks:
                seq += 1
                ready.append((seq, callback, self))
            sim._seq = seq

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback runs at the
        current simulated time (still through the event queue, so
        ordering stays deterministic).
        """
        if self._triggered:
            self.sim._schedule_call(callback, self)
            return
        proc = self._proc
        if proc is not None:
            # Demote: the waiting process joins the ordinary callback
            # list, ahead of the new callback (attach order preserved).
            self._proc = None
            self._callbacks = [proc, callback]
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)


#: stands in for "no event" at first resume and after interrupts, so
#: the resume loop needs no None checks on its hottest branch.
_NULL_EVENT = _make_null_event()


class Timeout(Event):
    """An event that fires at a fixed future time.

    Scheduled with a single heap entry at creation (``None`` in the
    callback slot).  When ``_proc`` holds the sole waiter, the pop
    resumes that process directly and the object is recycled; any
    other waiter demotes the timeout to the general callback path.
    """

    __slots__ = ()


class Process(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`Event` objects.  The process
    is itself an event: it succeeds with the generator's return value,
    or fails with the exception that escaped the generator.  Other
    processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts", "_send", "_throw",
                 "_resume_cb")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        self._interrupts: list[Interrupt] = []
        self._send = generator.send
        self._throw = generator.throw
        #: the bound resume method, materialized once: attaching it per
        #: yield would allocate a fresh bound method each time, and
        #: identity checks (detach on interrupt) need a stable object.
        self._resume_cb = self._resume
        sim._schedule_call(self._resume_cb, _NULL_EVENT)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a finished process is a no-op, matching the usual
        "cancel if still running" usage.
        """
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            # Detach from the event we were waiting on; resume with the
            # interrupt instead.  The original event may still trigger
            # later; we simply no longer care.
            if waiting._proc is self._resume_cb:
                waiting._proc = None
            elif waiting._callbacks:
                try:
                    waiting._callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
            self.sim._schedule_call(self._resume_cb, _NULL_EVENT)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        send = self._send
        while True:
            try:
                if self._interrupts:
                    interrupt = self._interrupts.pop(0)
                    target = self._throw(interrupt)
                elif event._exc is not None:
                    target = self._throw(event._exc)
                else:
                    target = send(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process quietly:
                # this is the normal way to cancel background daemons.
                self._value = exc.cause
                if not self.triggered:
                    self.succeed(exc.cause)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self.fail(exc)
                self.sim.failed_processes.append(self)
                return
            if not isinstance(target, Event):
                self._throw(
                    SimulationError(f"process yielded non-event {target!r}")
                )
                return
            if target._triggered:
                # Inline continuation: the value (or exception) is
                # already frozen, so resume immediately instead of
                # bouncing through the heap.
                event = target
                continue
            self._waiting_on = target
            if target._proc is None and not target._callbacks:
                # single-waiter fast slot: a Timeout pop resumes us
                # directly; any other event pushes one heap entry on
                # trigger without allocating a callback list.
                target._proc = self._resume_cb
            else:
                target.add_callback(self._resume_cb)
            return


class Simulator:
    """The event loop: a clock plus a heap of pending callbacks.

    Heap entries are ``(when, seq, callback, arg)``.  A ``None``
    callback marks the timeout fast path: ``arg`` is the
    :class:`Timeout` to fire.  Otherwise ``callback(arg)`` runs —
    ``arg`` is an :class:`Event` or opaque payload the callback
    expects (e.g. a packet for a NIC-delivery callback).
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[Any], None] | None, Any]] = []
        #: events due at the current clock value, in seq order; they
        #: bypass the heap (no O(log n) sift for same-time wake-ups).
        #: Entries are ``(seq, callback, arg)``.
        self._ready: deque[tuple[int, Callable[[Any], None] | None, Any]] = deque()
        self._seq = 0
        self._processes: list[Process] = []
        #: free list of consumed single-waiter events (timeouts and
        #: queued channel/resource grants both recycle through it)
        self._event_pool: list[Event] = []
        #: cumulative count of executed kernel events (heap pops);
        #: benchmarks report events/sec from this.
        self.events_processed = 0
        #: processes that died with an unhandled exception; experiments
        #: assert this stays empty so failures never pass silently.
        self.failed_processes: list[Process] = []

    # -- event construction ----------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._value = value
            ev.name = name
        else:
            ev = Timeout(self, name)
            ev._value = value
        seq = self._seq + 1
        self._seq = seq
        if delay == 0.0:
            self._ready.append((seq, None, ev))
        else:
            heappush(self._heap, (self.now + delay, seq, None, ev))
        return ev

    def _fire_direct(self, ev: Event) -> None:
        """Fire a direct-resume heap entry (callback slot was ``None``).

        Used by timeouts and by channel/resource wake-ups: ``_value``
        already holds the delivery value, and when ``_proc`` holds the
        sole waiting process it is resumed directly and the event
        object recycled through the free list.
        """
        proc = ev._proc
        if proc is not None:
            # sole waiter is a process: resume directly and recycle.
            ev._proc = None
            ev._triggered = True
            proc(ev)
            ev._triggered = False
            self._event_pool.append(ev)
        elif ev._triggered:
            # cancelled/stale entry (e.g. the object was recycled and
            # re-triggered through the slow path); nothing to do.
            pass
        else:
            # waiter detached (interrupt) or demoted to the callback
            # path: trigger normally.  Not recycled — references may
            # be held.
            ev._trigger(ev._value, None)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        proc = Process(self, generator, name)
        self._processes.append(proc)
        return proc

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event that succeeds when every input event has succeeded.

        Its value is the list of input values in input order.  Fails
        fast with the first failure.
        """
        events = list(events)
        done = self.event(name)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * remaining
        state = {"left": remaining, "failed": False}

        def make_callback(index: int):
            def on_trigger(ev: Event) -> None:
                if done.triggered:
                    return
                if ev._exc is not None:
                    state["failed"] = True
                    done.fail(ev._exc)
                    return
                values[index] = ev._value
                state["left"] -= 1
                if state["left"] == 0:
                    done.succeed(values)
            return on_trigger

        for i, ev in enumerate(events):
            ev.add_callback(make_callback(i))
        return done

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """An event that mirrors the first input event to trigger."""
        events = list(events)
        done = self.event(name)

        def on_trigger(ev: Event) -> None:
            if done.triggered:
                return
            if ev._exc is not None:
                done.fail(ev._exc)
            else:
                done.succeed(ev._value)

        for ev in events:
            ev.add_callback(on_trigger)
        return done

    # -- scheduling internals ----------------------------------------------

    def _schedule_call(
        self, callback: Callable[[Any], None], event: Any
    ) -> None:
        seq = self._seq + 1
        self._seq = seq
        self._ready.append((seq, callback, event))

    def _schedule_at(
        self,
        when: float,
        callback: Callable[[Any], None],
        event: Any,
    ) -> None:
        seq = self._seq + 1
        self._seq = seq
        if when <= self.now:
            self._ready.append((seq, callback, event))
        else:
            heappush(self._heap, (when, seq, callback, event))

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending callback; return False if none remain."""
        ready = self._ready
        heap = self._heap
        from_heap = False
        if ready:
            if heap:
                h0 = heap[0]
                if h0[0] <= self.now and h0[1] < ready[0][0]:
                    from_heap = True
        elif heap:
            from_heap = True
        else:
            return False
        if from_heap:
            when, _seq, callback, arg = heappop(heap)
            if when < self.now:
                raise SimulationError("time went backwards")
            self.now = when
        else:
            _seq, callback, arg = ready.popleft()
        self.events_processed += 1
        if callback is None:
            self._fire_direct(arg)
        else:
            callback(arg)
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the final simulated time.  With ``until`` set, the
        clock is advanced exactly to ``until`` even if the last event
        fires earlier, so utilization denominators are well defined.

        The cyclic garbage collector is paused for the duration of the
        run (and restored after): generator-based processes allocate
        heavily but produce little cyclic garbage, so collection passes
        in the middle of a run are pure overhead.  The cycles the run
        did create are reclaimed eagerly on exit — re-enabling with a
        large young-generation backlog would otherwise leave follow-up
        work thrashing the threshold-triggered collector.
        """
        gc_enabled = gc.isenabled()
        if gc_enabled:
            gc.disable()
        try:
            return self._run(until)
        finally:
            if gc_enabled:
                gc.enable()
                gc.collect(1)

    def _run(self, until: float | None) -> float:
        heap = self._heap
        ready = self._ready
        pop = heappop
        ready_pop = ready.popleft
        pool_append = self._event_pool.append
        count = 0
        # The direct-resume logic (see _fire_direct) is inlined in
        # both loops: at millions of events per run the extra call
        # frame per event is measurable.  Ready-deque entries run
        # before heap entries at the same clock value unless the heap
        # head carries a smaller seq — global (time, seq) order is
        # identical to a pure-heap kernel.
        if until is None:
            while True:
                if ready:
                    if heap:
                        h0 = heap[0]
                        if h0[0] <= self.now and h0[1] < ready[0][0]:
                            when, _seq, callback, arg = pop(heap)
                            self.now = when
                        else:
                            _seq, callback, arg = ready_pop()
                    else:
                        _seq, callback, arg = ready_pop()
                elif heap:
                    when, _seq, callback, arg = pop(heap)
                    self.now = when
                else:
                    break
                count += 1
                if callback is None:
                    proc = arg._proc
                    if proc is not None:
                        arg._proc = None
                        arg._triggered = True
                        proc(arg)
                        arg._triggered = False
                        pool_append(arg)
                    elif not arg._triggered:
                        arg._trigger(arg._value, None)
                else:
                    callback(arg)
        else:
            while True:
                if ready:
                    if heap:
                        h0 = heap[0]
                        if h0[0] <= self.now and h0[1] < ready[0][0]:
                            when, _seq, callback, arg = pop(heap)
                            self.now = when
                        else:
                            _seq, callback, arg = ready_pop()
                    else:
                        _seq, callback, arg = ready_pop()
                elif heap and heap[0][0] <= until:
                    when, _seq, callback, arg = pop(heap)
                    self.now = when
                else:
                    break
                count += 1
                if callback is None:
                    proc = arg._proc
                    if proc is not None:
                        arg._proc = None
                        arg._triggered = True
                        proc(arg)
                        arg._triggered = False
                        pool_append(arg)
                    elif not arg._triggered:
                        arg._trigger(arg._value, None)
                else:
                    callback(arg)
            self.now = max(self.now, until)
        self.events_processed += count
        return self.now

    def peek(self) -> float | None:
        """Time of the next pending event, or None if nothing is pending."""
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else None

"""Deterministic discrete-event simulation substrate.

The kernel (:mod:`repro.sim.kernel`) provides processes-as-generators
over a virtual clock; :mod:`repro.sim.resources` adds FIFO resources
with utilization tracking and message channels;
:mod:`repro.sim.stats` the metric collectors; :mod:`repro.sim.rng`
named seeded random streams; and :mod:`repro.sim.failures` crash/repair
schedules for the availability experiments.
"""

from .failures import (
    ClusterChurn,
    LinkDegrader,
    UpDownProcess,
    bernoulli_outage_sample,
    mttr_for_unavailability,
    node_is_up,
    restore_all,
    unavailability,
)
from .kernel import Event, Interrupt, Process, SimulationError, Simulator
from .resources import Channel, Resource
from .rng import RngRegistry
from .stats import Counter, LatencySample, MetricSet, TimeWeighted

__all__ = [
    "Channel",
    "ClusterChurn",
    "Counter",
    "LinkDegrader",
    "Event",
    "Interrupt",
    "LatencySample",
    "MetricSet",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TimeWeighted",
    "UpDownProcess",
    "bernoulli_outage_sample",
    "mttr_for_unavailability",
    "node_is_up",
    "restore_all",
    "unavailability",
]

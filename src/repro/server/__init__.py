"""The log-server node: protocol service, NVRAM buffering, disk stream.

:class:`~repro.server.log_server.SimLogServer` is the full node of
Section 4; :mod:`repro.server.client_state` holds the per-client gap
detection; :mod:`repro.server.load` the shedding and assignment
strategies of Sections 4.2 and 5.4.
"""

from .client_state import ClientProtocolState
from .load import (
    LeastLoadedAssignment,
    NeverShed,
    NvramBackpressure,
    RandomAssignment,
    SheddingPolicy,
    StickyAssignment,
)
from .log_server import SimLogServer
from .space import SpaceManager, SpaceReport, TruncationPoint

__all__ = [
    "ClientProtocolState",
    "LeastLoadedAssignment",
    "NeverShed",
    "NvramBackpressure",
    "RandomAssignment",
    "SheddingPolicy",
    "SimLogServer",
    "SpaceManager",
    "SpaceReport",
    "StickyAssignment",
    "TruncationPoint",
]

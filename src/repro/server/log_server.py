"""The simulated log-server node (Section 4).

A :class:`SimLogServer` ties together every substrate the paper's
design calls for:

* a network endpoint speaking the Figure 4-1 protocol;
* a CPU charged per packet, per message, and per track write with the
  instruction budgets of Section 4.1;
* a low-latency non-volatile buffer into which incoming records are
  copied before they are acknowledged (a force completes at NVRAM
  speed, not disk speed);
* one disk receiving the merged, interleaved log stream a track at a
  time, with periodic interval-list checkpoints; and
* per-client gap detection producing MissingInterval messages, and
  NVRAM back-pressure producing load shedding.

Crash/restart follows the paper's durability story: NVRAM contents and
sealed tracks survive a crash; the semantic state is rebuilt by
scanning the stream (:meth:`restart`).
"""

from __future__ import annotations

from ..analysis.constants import DEFAULT_MIPS, CpuModel
from ..core.epoch import GeneratorStateRepresentative
from ..core.errors import ProtocolError, ServerUnavailable
from ..core.records import StoredRecord
from ..core.store import LogServerStore
from ..net.messages import (
    AckReply,
    CopyLogCall,
    ErrorReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    WriteLogMsg,
)
from ..net.packet import PACKET_PAYLOAD_BYTES
from ..net.rpc import RpcReply, RpcRequest
from ..net.transport import Connection, Endpoint
from ..sim.kernel import Simulator
from ..sim.resources import Resource
from ..sim.stats import Counter, MetricSet
from ..storage.disk import SLOW_1987_DISK, DiskParams, SimDisk
from ..storage.log_stream import DiskLogStream, StreamEntry
from ..storage.nvram import NvramBuffer, NvramFullError
from .client_state import ClientProtocolState
from .index import ServerLogIndex
from .load import NvramBackpressure, SheddingPolicy


class SimLogServer:
    """A log-server node inside the discrete-event simulation."""

    def __init__(
        self,
        sim: Simulator,
        network,
        server_id: str,
        disk_params: DiskParams = SLOW_1987_DISK,
        nvram_capacity: int = 256 * 1024,
        mips: float = DEFAULT_MIPS,
        flush_check_interval_s: float = 0.010,
        idle_flush_after_s: float = 0.200,
        checkpoint_every_tracks: int = 64,
        metrics: MetricSet | None = None,
        shed_policy: SheddingPolicy | None = None,
        disk=None,
        cpu_model: CpuModel | None = None,
        nvram_enabled: bool = True,
    ):
        self.sim = sim
        self.server_id = server_id
        self.endpoint = Endpoint(sim, network, server_id)
        self.store = LogServerStore(server_id)
        self.disk = (
            disk if disk is not None
            else SimDisk(sim, disk_params, name=f"{server_id}.disk")
        )
        self.stream = DiskLogStream(track_bytes=self.disk.params.track_bytes,
                                    name=f"{server_id}.stream")
        self.index = ServerLogIndex()
        self.stream.on_seal = self.index.on_seal
        self.nvram = NvramBuffer(sim, nvram_capacity)
        self.cpu = Resource(sim, capacity=1, name=f"{server_id}.cpu")
        self.cpu_model = cpu_model if cpu_model is not None else CpuModel(mips)
        #: with NVRAM disabled, every force waits for a disk write
        #: before it is acknowledged — the configuration Section 4.1's
        #: footnote rules out, kept for the ablation experiment.
        self.nvram_enabled = nvram_enabled
        self.metrics = metrics if metrics is not None else MetricSet()
        self.shed_policy = (
            shed_policy if shed_policy is not None
            else NvramBackpressure(self.nvram)
        )
        self.flush_check_interval_s = flush_check_interval_s
        self.idle_flush_after_s = idle_flush_after_s
        self.checkpoint_every_tracks = checkpoint_every_tracks
        #: the node's generator-state representative (Appendix I):
        #: "representatives … will normally be implemented on log
        #: server nodes".  The integer lives in NVRAM, so it survives
        #: crashes like the rest of the durable state.
        self.generator_rep = GeneratorStateRepresentative(
            f"{server_id}.genrep")
        self._proto: dict[str, ClientProtocolState] = {}
        self._counters: dict[str, Counter] = {}
        #: per-operation CPU charges are fixed for the node's lifetime;
        #: resolving them through the CpuModel per packet is measurable
        #: at target load.
        self._packet_time = self.cpu_model.packet_time()
        self._message_time = self.cpu_model.message_time()
        self._track_write_time = self.cpu_model.track_write_time()
        # hot-path counters resolved once (the cold ones go via _count)
        counter = self.metrics.counter
        self._c_packets_in = counter(f"{server_id}.packets_in")
        self._c_packets_out = counter(f"{server_id}.packets_out")
        self._c_force_msgs = counter(f"{server_id}.force_msgs")
        self._c_write_msgs = counter(f"{server_id}.write_msgs")
        self._c_records_stored = counter(f"{server_id}.records_stored")
        self._c_bytes_stored = counter(f"{server_id}.bytes_stored")
        self._c_ack_msgs = counter(f"{server_id}.ack_msgs")
        self._c_rpcs = counter(f"{server_id}.rpcs")
        self._last_append_time = 0.0
        self._tracks_since_checkpoint = 0
        self.crashed = False
        self.messages_shed = 0
        sim.spawn(self._accept_loop(), name=f"{server_id}.accept")
        sim.spawn(self._flusher(), name=f"{server_id}.flusher")

    # -- helpers ------------------------------------------------------------

    def _proto_state(self, client_id: str) -> ClientProtocolState:
        state = self._proto.get(client_id)
        if state is None:
            state = ClientProtocolState(client_id)
            self._proto[client_id] = state
        return state

    def _count(self, name: str, amount: float = 1.0) -> None:
        # Counter objects are cached per name: building the qualified
        # name and re-resolving it through the MetricSet dict for every
        # stored record is measurable at target load.
        counter = self._counters.get(name)
        if counter is None:
            counter = self.metrics.counter(f"{self.server_id}.{name}")
            self._counters[name] = counter
        counter.add(amount)

    # -- processes -----------------------------------------------------------

    def _accept_loop(self):
        while True:
            conn = yield from self.endpoint.accept()
            self.sim.spawn(self._serve(conn), name=f"{self.server_id}.serve")

    def _serve(self, conn: Connection):
        sim = self.sim
        cpu = self.cpu
        inbox_get = conn.inbox.get
        packet_time = self._packet_time
        message_time = self._message_time
        # Recovery rebinds self.store/self._proto, but a crash closes
        # every connection first, ending this loop — so per-connection
        # bindings can never go stale while still in use.
        proto_map = self._proto
        nvram = self.nvram
        store_write = self.store.server_write_record
        stream_append = self.stream.append
        c_in = self._c_packets_in
        c_force = self._c_force_msgs
        c_write = self._c_write_msgs
        c_records = self._c_records_stored
        c_bytes = self._c_bytes_stored
        while conn.open:
            message = yield inbox_get()
            if self.crashed:
                continue
            c_in.count += 1
            c_in.total += 1.0
            # _charge_packet inlined: no per-packet charge generator.
            yield cpu.acquire()
            try:
                yield sim.timeout(packet_time)
            finally:
                cpu.release()
                cpu.total_served += 1
            # Write messages dominate the mix at target load, so they
            # are dispatched first, and _handle_write is inlined into
            # this loop: its own frame would otherwise be traversed on
            # every kernel resumption of every per-message yield.
            if isinstance(message, (ForceLogMsg, WriteLogMsg)):
                forced = type(message) is ForceLogMsg
                c = c_force if forced else c_write
                c.count += 1
                c.total += 1.0
                cid = message.client_id
                records = message.records
                incoming = 24 * len(records)
                for r in records:
                    incoming += len(r.data)
                if self.shed_policy.should_shed(incoming):
                    self.messages_shed += 1
                    self._count("msgs_shed")
                    continue
                yield cpu.acquire()
                try:
                    yield sim.timeout(message_time)
                finally:
                    cpu.release()
                    cpu.total_served += 1
                proto = proto_map.get(cid)
                if proto is None:
                    proto = self._proto_state(cid)
                verdict = proto.classify_batch(
                    records[0].lsn, records[-1].lsn, message.epoch
                )
                if verdict == "duplicate":
                    if forced:
                        yield from self._ack(conn, cid, proto.acked_high)
                    continue
                if verdict == "gap":
                    yield from self._send(
                        conn,
                        MissingIntervalMsg(
                            client_id=cid,
                            lo=proto.expected_lsn, hi=records[0].lsn - 1,
                        ),
                    )
                    self._count("missing_interval_msgs")
                    continue
                if verdict == "overlap":
                    records = tuple(
                        r for r in records if r.lsn >= proto.expected_lsn
                    )
                try:
                    # _store_record inlined (the method remains for the
                    # CopyLog path): one call per stored record.
                    for record in records:
                        entry = StreamEntry("write", cid, record)
                        try:
                            nvram.append(entry.byte_size)
                        except NvramFullError:
                            self._count("nvram_overflow")
                            raise ProtocolError("nvram full") from None
                        store_write(cid, record)
                        stream_append(entry)
                        self._last_append_time = sim.now
                        c_records.count += 1
                        c_records.total += 1.0
                        c_bytes.count += 1
                        c_bytes.total += len(record.data)
                except ProtocolError:
                    # A stale retransmission from an older epoch.
                    self._count("stale_msgs")
                    continue
                if records:
                    proto.note_stored(records[-1].lsn, message.epoch)
                if forced:
                    if not self.nvram_enabled and self.nvram.level > 0:
                        # No non-volatile buffer: the force is durable
                        # only once the pending data reaches the disk.
                        yield from self._flush(self.nvram.level)
                    # _ack/_send inlined likewise.
                    self._c_ack_msgs.add()
                    yield cpu.acquire()
                    try:
                        yield sim.timeout(packet_time)
                    finally:
                        cpu.release()
                        cpu.total_served += 1
                    self._c_packets_out.add()
                    yield from conn.send(
                        NewHighLSNMsg(client_id=cid,
                                      new_high_lsn=proto.acked_high)
                    )
            elif isinstance(message, RpcRequest):
                yield from self._handle_rpc(conn, message)
            elif isinstance(message, NewIntervalMsg):
                self._handle_new_interval(message)

    def _flusher(self):
        """Drain NVRAM to disk a track at a time (Section 4.1)."""
        track = self.disk.params.track_bytes
        while True:
            yield self.sim.timeout(self.flush_check_interval_s)
            if self.crashed:
                continue
            while self.nvram.track_ready(track):
                yield from self._flush(track)
            idle_for = self.sim.now - self._last_append_time
            if self.nvram.level > 0 and idle_for >= self.idle_flush_after_s:
                yield from self._flush(self.nvram.level)

    def _flush(self, nbytes: int):
        yield from self.cpu.use(self._track_write_time)
        yield from self.disk.write_track(nbytes)
        self.nvram.drain(nbytes)
        self.stream.seal_track()
        self._count("tracks_flushed")
        self._tracks_since_checkpoint += 1
        if self._tracks_since_checkpoint >= self.checkpoint_every_tracks:
            self.stream.checkpoint(self.store)
            self._tracks_since_checkpoint = 0

    # -- asynchronous writes ----------------------------------------------------

    def _store_record(
        self, client_id: str, record: StoredRecord, kind_entry: str
    ) -> None:
        """Apply one record to the semantic store, stream, and NVRAM."""
        entry = StreamEntry(kind_entry, client_id, record)
        try:
            self.nvram.append(entry.byte_size)
        except NvramFullError:
            self._count("nvram_overflow")
            raise ProtocolError("nvram full") from None
        if kind_entry == "write":
            self.store.server_write_record(client_id, record)
        else:
            self.store.copy_log(
                client_id, record.lsn, record.epoch,
                record.present, record.data, record.kind,
            )
        self.stream.append(entry)
        self._last_append_time = self.sim.now
        # Counter.add inlined for the two per-record counters.
        c = self._c_records_stored
        c.count += 1
        c.total += 1.0
        c = self._c_bytes_stored
        c.count += 1
        c.total += len(record.data)

    def _ack(self, conn: Connection, client_id: str, high: int):
        self._c_ack_msgs.add()
        yield from self._send(
            conn, NewHighLSNMsg(client_id=client_id, new_high_lsn=high)
        )

    def _send(self, conn: Connection, message):
        # _charge_packet inlined (acks ride this path once per force).
        cpu = self.cpu
        yield cpu.acquire()
        try:
            yield self.sim.timeout(self._packet_time)
        finally:
            cpu.release()
            cpu.total_served += 1
        self._c_packets_out.add()
        yield from conn.send(message)

    def _handle_new_interval(self, msg: NewIntervalMsg) -> None:
        self._proto_state(msg.client_id).start_new_interval(
            msg.starting_lsn, msg.epoch
        )
        self._count("new_interval_msgs")

    # -- synchronous calls ---------------------------------------------------------

    def _handle_rpc(self, conn: Connection, request: RpcRequest):
        body = request.body
        self._c_rpcs.add()
        if isinstance(body, IntervalListCall):
            reply = self._do_interval_list(body)
        elif isinstance(body, ReadLogForwardCall):
            reply = yield from self._do_read(body, forward=True)
        elif isinstance(body, ReadLogBackwardCall):
            reply = yield from self._do_read(body, forward=False)
        elif isinstance(body, CopyLogCall):
            reply = self._do_copy(body)
        elif isinstance(body, InstallCopiesCall):
            reply = self._do_install(body)
        elif isinstance(body, GeneratorReadCall):
            # the representative can be down independently of the node
            # (failure injection drives it directly); answer with an
            # error instead of letting the exception kill this
            # connection's handler.
            try:
                value = self.generator_rep.read()
            except ServerUnavailable:
                reply = ErrorReply(client_id=body.client_id,
                                   reason="generator representative down")
            else:
                reply = GeneratorReadReply(client_id=body.client_id,
                                           value=value)
        elif isinstance(body, GeneratorWriteCall):
            try:
                self.generator_rep.write(body.value)
            except ServerUnavailable:
                reply = ErrorReply(client_id=body.client_id,
                                   reason="generator representative down")
            else:
                reply = AckReply(client_id=body.client_id)
        else:
            reply = ErrorReply(client_id=body.client_id,
                               reason=f"unknown call {type(body).__name__}")
        yield from self._send(conn, RpcReply(request.rpc_id, reply))

    def _do_interval_list(self, call: IntervalListCall) -> IntervalListReply:
        report = self.store.interval_list(call.client_id)
        return IntervalListReply(client_id=call.client_id,
                                 intervals=tuple(report.intervals))

    def _do_read(self, call, forward: bool):
        """ReadLogForward/Backward: fill a packet with consecutive records.

        The append-forest index (Section 4.3) maps each requested LSN
        to its sealed track; the call charges one random disk read per
        *distinct* track touched.  Records still in NVRAM (the unsealed
        track) are served without disk work.
        """
        state = self.store.client_state(call.client_id)
        records: list[StoredRecord] = []
        tracks: set[int] = set()
        nvram_hits = 0
        size = 0
        lsn = call.lsn
        step = 1 if forward else -1
        while True:
            record = state.lookup(lsn)
            if record is None:
                break
            record_size = 16 + len(record.data)
            if records and size + record_size > PACKET_PAYLOAD_BYTES:
                break
            records.append(record)
            size += record_size
            address = self.index.locate(call.client_id, lsn)
            if address is not None:
                tracks.add(address)
            else:
                nvram_hits += 1
            lsn += step
        for _address in sorted(tracks):
            yield from self.disk.random_read(self.disk.params.track_bytes)
        if records:
            self._count("read_calls_served")
            self._count("read_tracks_touched", len(tracks))
            self._count("read_nvram_hits", nvram_hits)
        if not forward:
            records.reverse()
        return ReadLogReply(client_id=call.client_id, records=tuple(records))

    def _do_copy(self, call: CopyLogCall):
        try:
            for record in call.records:
                self._store_record(call.client_id, record, kind_entry="copy")
        except ProtocolError as exc:
            return ErrorReply(client_id=call.client_id, reason=str(exc))
        self._count("copy_calls")
        return AckReply(client_id=call.client_id)

    def _do_install(self, call: InstallCopiesCall):
        try:
            self.nvram.append(24)
            self.store.install_copies(call.client_id, call.epoch)
            self.stream.append(
                StreamEntry("install", call.client_id, None, call.epoch)
            )
        except (ProtocolError, NvramFullError) as exc:
            return ErrorReply(client_id=call.client_id, reason=str(exc))
        # After installation the client's contiguous position restarts
        # at the installed high-water mark.
        state = self.store.client_state(call.client_id)
        proto = self._proto_state(call.client_id)
        high = state.high_lsn
        if high is not None:
            proto.note_stored(high, call.epoch)
        self._count("install_calls")
        return AckReply(client_id=call.client_id)

    # -- crash lifecycle -------------------------------------------------------------

    def crash(self) -> None:
        """Power-fail the node: volatile state lost, NVRAM/disk survive."""
        self.crashed = True
        self.endpoint.crash()

    def restart(self, lose_nvram: bool = False) -> None:
        """Rebuild semantic state by scanning the durable stream.

        ``lose_nvram=True`` models a server *without* battery backup:
        the open (unsealed) track is volatile and its records are lost,
        which is exactly the failure mode Section 4.1's footnote rules
        unacceptable — tests use it to demonstrate why.
        """
        if lose_nvram:
            self.stream._open_track = []
            self.stream._open_track_bytes = 0
            self.nvram.drain(self.nvram.level)
        store, _replayed = self.stream.crash_scan(
            self.server_id, lose_open_track=False
        )
        self.store = store
        # the index is volatile; rebuild it from the sealed tracks
        self.index.rebuild(self.stream)
        self._proto = {}
        for client_id in store.known_clients():
            state = store.client_state(client_id)
            proto = self._proto_state(client_id)
            high = state.high_lsn
            if high is not None:
                proto.note_stored(high, state.high_epoch)
        self.endpoint.restart()
        self.crashed = False

    # -- reporting ------------------------------------------------------------------

    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    def disk_utilization(self) -> float:
        return self.disk.utilization()

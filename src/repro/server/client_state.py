"""Per-client protocol state kept by a log server.

Beyond the durable record store, a server tracks for each client where
the next contiguous record should land, so it can "detect lost messages
when it receives a ForceLog or WriteLog message with log sequence
numbers that are not contiguous with those it has previously received
from the same client" and answer with MissingInterval (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.records import Epoch, LSN


@dataclass(slots=True)
class ClientProtocolState:
    """Gap-detection and acknowledgment state for one client."""

    client_id: str
    #: next LSN the server will accept as contiguous; None means any
    #: starting point is acceptable (fresh client or after NewInterval).
    expected_lsn: LSN | None = None
    #: epoch of the current open interval.
    current_epoch: Epoch = 0
    #: highest LSN stored and durable (in NVRAM or on disk) — the value
    #: NewHighLSN acknowledgments carry.
    acked_high: LSN = 0

    def classify_batch(self, low: LSN, high: LSN, epoch: Epoch) -> str:
        """How an incoming batch relates to the expected position.

        Returns one of:

        * ``"contiguous"`` — extends the open interval (or starts one);
        * ``"duplicate"``  — entirely at or below what is stored;
        * ``"overlap"``    — straddles the expected position (retransmit
          with some new records at the tail);
        * ``"gap"``        — starts beyond the expected position.
        """
        if self.expected_lsn is None:
            return "contiguous"
        if epoch != self.current_epoch:
            # A new epoch always starts a new interval; recovery
            # installs guard its position, so accept it.
            return "contiguous"
        if high < self.expected_lsn:
            return "duplicate"
        if low < self.expected_lsn <= high:
            return "overlap"
        if low == self.expected_lsn:
            return "contiguous"
        return "gap"

    def note_stored(self, high: LSN, epoch: Epoch) -> None:
        """Advance after storing records through ``high`` in ``epoch``."""
        self.expected_lsn = high + 1
        self.current_epoch = epoch
        self.acked_high = max(self.acked_high, high)

    def start_new_interval(self, starting_lsn: LSN, epoch: Epoch) -> None:
        """Apply a NewInterval message: ignore the gap, accept from here."""
        self.expected_lsn = starting_lsn
        self.current_epoch = epoch

"""Log space management (Section 5.3).

"There are at least four functions that can be combined to develop a
space management strategy.  First, client recovery managers can use
checkpoints and other mechanisms to limit the online log storage
required for node recovery.  Second, periodic dumps can be used to
limit the total amount of log data needed for media failure recovery.
Third, log data can be spooled to offline storage.  Finally, log data
can be compressed to eliminate redundant or unnecessary log records."

:class:`SpaceManager` implements the server side of all four:

* clients declare *truncation points* — the LSN below which their
  records are no longer needed for node recovery (their checkpoint)
  and for media recovery (their last dump);
* sealed tracks whose every record lies below the owning clients'
  media-recovery points are **spooled** to offline storage (still
  recoverable, no longer on the online disk) or **discarded** under the
  simple-strategy mode the paper sketches ("database dumps could be
  taken daily, and the online log could simply accumulate between
  dumps");
* :meth:`compress_superseded` drops records masked by a higher-epoch
  copy of the same LSN — the one class of record that is redundant by
  construction.

Cost/benefit accounting follows the paper's evaluation criteria:
online bytes, offline bytes, and the number of records each recovery
class would have to read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.records import LSN
from ..storage.log_stream import Checkpoint, DiskLogStream, StreamEntry


@dataclass(frozen=True, slots=True)
class TruncationPoint:
    """What one client still needs from the log.

    ``node_recovery_lsn`` — records at or above this LSN are needed to
    restart the client node (its checkpoint low-water mark).
    ``media_recovery_lsn`` — records at or above this are needed to
    recover from a media failure (its last database dump).  Always
    ``media_recovery_lsn <= node_recovery_lsn``.
    """

    node_recovery_lsn: LSN
    media_recovery_lsn: LSN

    def __post_init__(self) -> None:
        if self.media_recovery_lsn > self.node_recovery_lsn:
            raise ValueError(
                "media recovery needs at least as much log as node recovery"
            )


@dataclass(slots=True)
class SpaceReport:
    """Online/offline byte accounting after a space-management pass."""

    online_tracks: int = 0
    online_bytes: int = 0
    spooled_tracks: int = 0
    spooled_bytes: int = 0
    discarded_tracks: int = 0
    discarded_bytes: int = 0
    compressed_records: int = 0
    compressed_bytes: int = 0


class SpaceManager:
    """Space management for one server's log stream.

    The manager never mutates the stream's pages in place (they model
    write-once tracks); instead it tracks which track addresses are
    *online*, *offline (spooled)*, or *discarded*, and serves the
    accounting questions the paper's comparison framework asks.
    """

    def __init__(self, stream: DiskLogStream):
        self.stream = stream
        self._points: dict[str, TruncationPoint] = {}
        self._offline: set[int] = set()
        self._discarded: set[int] = set()
        #: offline storage contents (spooled tracks), by address.
        self.offline_store: dict[int, tuple[StreamEntry, ...]] = {}
        self.report = SpaceReport()

    # -- client declarations ---------------------------------------------

    def declare(self, client_id: str, point: TruncationPoint) -> None:
        """Record a client's recovery needs (monotone per client)."""
        current = self._points.get(client_id)
        if current is not None:
            point = TruncationPoint(
                node_recovery_lsn=max(point.node_recovery_lsn,
                                      current.node_recovery_lsn),
                media_recovery_lsn=max(point.media_recovery_lsn,
                                       current.media_recovery_lsn),
            )
        self._points[client_id] = point

    def point_for(self, client_id: str) -> TruncationPoint:
        return self._points.get(client_id, TruncationPoint(1, 1))

    # -- classification -----------------------------------------------------

    def _track_needed_for(self, entries, media: bool) -> bool:
        """Does any entry still matter for (media or node) recovery?

        Install markers are kept as long as any record of their client
        is kept (they are three integers; the conservative choice is
        free).  Unknown clients (no declaration) keep everything.
        In-stream checkpoint pages (write-once media) are always kept.
        """
        if isinstance(entries, Checkpoint):
            return True
        for entry in entries:
            point = self.point_for(entry.client_id)
            threshold = (point.media_recovery_lsn if media
                         else point.node_recovery_lsn)
            if entry.kind == "install":
                return True
            if entry.record is not None and entry.record.lsn >= threshold:
                return True
        return False

    def track_states(self) -> dict[int, str]:
        """Address -> 'online' | 'offline' | 'discarded'."""
        states = {}
        for address in range(len(self.stream.pages)):
            if address in self._discarded:
                states[address] = "discarded"
            elif address in self._offline:
                states[address] = "offline"
            else:
                states[address] = "online"
        return states

    # -- the four functions -----------------------------------------------------

    def spool_to_offline(self) -> SpaceReport:
        """Move tracks not needed for *node* recovery to offline storage.

        Spooled tracks remain available for media recovery (reading
        them back models mounting a tape/optical platter).
        """
        for address in range(len(self.stream.pages)):
            if address in self._offline or address in self._discarded:
                continue
            entries = self.stream.pages.read(address)
            if not self._track_needed_for(entries, media=False):
                self._offline.add(address)
                self.offline_store[address] = entries
                nbytes = sum(e.byte_size for e in entries)
                self.report.spooled_tracks += 1
                self.report.spooled_bytes += nbytes
        return self._refresh_online()

    def discard_unneeded(self) -> SpaceReport:
        """Drop tracks needed by *no* recovery class at all.

        Only legal for tracks below every client's media-recovery
        point — after a dump, per the paper's "periodic dumps can be
        used to limit the total amount of log data".
        """
        for address in range(len(self.stream.pages)):
            if address in self._discarded:
                continue
            entries = self.stream.pages.read(address)
            if not self._track_needed_for(entries, media=True):
                self._discarded.add(address)
                self._offline.discard(address)
                self.offline_store.pop(address, None)
                nbytes = sum(e.byte_size for e in entries)
                self.report.discarded_tracks += 1
                self.report.discarded_bytes += nbytes
        return self._refresh_online()

    def compress_superseded(self) -> int:
        """Count records masked by a higher epoch at the same LSN.

        These are the records the paper's "compression to eliminate
        redundant or unnecessary log records" would drop on the next
        spool/copy pass.  Pages are write-once, so compression happens
        when data moves (spooling), not in place; the count is the
        achievable saving.
        """
        best: dict[tuple[str, LSN], int] = {}
        for entry in self.stream.entries(include_open=True):
            if entry.record is None:
                continue
            key = (entry.client_id, entry.record.lsn)
            best[key] = max(best.get(key, 0), entry.record.epoch)
        superseded = 0
        superseded_bytes = 0
        for entry in self.stream.entries(include_open=True):
            if entry.record is None:
                continue
            key = (entry.client_id, entry.record.lsn)
            if entry.record.epoch < best[key]:
                superseded += 1
                superseded_bytes += entry.byte_size
        self.report.compressed_records = superseded
        self.report.compressed_bytes = superseded_bytes
        return superseded

    # -- recovery-cost queries (the paper's comparison framework) -----------------

    def online_entries_for_node_recovery(self, client_id: str) -> int:
        """Records this client's node recovery would read, online."""
        point = self.point_for(client_id)
        return self._count_entries(client_id, point.node_recovery_lsn,
                                   include_offline=False)

    def entries_for_media_recovery(self, client_id: str) -> int:
        """Records media recovery would read (online + offline)."""
        point = self.point_for(client_id)
        return self._count_entries(client_id, point.media_recovery_lsn,
                                   include_offline=True)

    def _count_entries(self, client_id: str, threshold: LSN,
                       include_offline: bool) -> int:
        count = 0
        for address in range(len(self.stream.pages)):
            if address in self._discarded:
                continue
            if address in self._offline and not include_offline:
                continue
            page = self.stream.pages.read(address)
            if isinstance(page, Checkpoint):
                continue
            for entry in page:
                if (entry.client_id == client_id
                        and entry.record is not None
                        and entry.record.lsn >= threshold):
                    count += 1
        for entry in self.stream._open_track:
            if (entry.client_id == client_id
                    and entry.record is not None
                    and entry.record.lsn >= threshold):
                count += 1
        return count

    def _refresh_online(self) -> SpaceReport:
        online_tracks = 0
        online_bytes = 0
        for address in range(len(self.stream.pages)):
            if address in self._offline or address in self._discarded:
                continue
            page = self.stream.pages.read(address)
            if isinstance(page, Checkpoint):
                continue  # three integers per interval; negligible
            online_tracks += 1
            online_bytes += sum(e.byte_size for e in page)
        self.report.online_tracks = online_tracks
        self.report.online_bytes = online_bytes
        return self.report

"""The server's LSN → track index, built on the append-forest.

Section 4.3: "a data structure that permits random access by log
sequence number is needed … When an append forest is used to index a
log server client's records, the keys will be ranges of log sequence
numbers.  Each node of the append forest will contain pointers to each
log record in its range."

:class:`ClientLogIndex` maintains, per client, an append-forest whose
keys are the LSN ranges of that client's records in each sealed track
and whose entries are the track addresses.  The forest's strictly-
increasing-keys contract meets reality in one place: crash recovery
re-writes the last δ LSNs under a higher epoch, so the same LSN can
appear again.  Those (rare) re-writes go into a small *overlay* map
that read lookups consult first — the forest itself stays append-only
and write-once-storage safe, exactly as the paper intends.

:class:`ServerLogIndex` aggregates one :class:`ClientLogIndex` per
client and subscribes to the stream's seal events, so the index is a
pure function of the sealed tracks and can be rebuilt by scanning them
after a crash (:meth:`rebuild`).
"""

from __future__ import annotations

from ..core.records import LSN
from ..storage.append_forest import AppendForest
from ..storage.log_stream import DiskLogStream, StreamEntry
from ..storage.pages import PageAddress


class ClientLogIndex:
    """One client's LSN → track-address index."""

    def __init__(self, client_id: str):
        self.client_id = client_id
        self.forest = AppendForest()
        #: LSNs re-written under a later epoch (recovery copies): the
        #: winning location, consulted before the forest.
        self.overlay: dict[LSN, PageAddress] = {}
        self.records_indexed = 0

    def note_records(
        self, address: PageAddress, lsns: list[LSN]
    ) -> None:
        """Index this client's records from one sealed track.

        ``lsns`` is in write order.  Fresh LSNs (above the forest's
        high key) are grouped into maximal consecutive runs, each
        appended as one range node; re-written LSNs go to the overlay.
        """
        fresh: list[LSN] = []
        high = self.forest.high_key or 0
        for lsn in lsns:
            if lsn > high and (not fresh or lsn > fresh[-1]):
                fresh.append(lsn)
            else:
                self.overlay[lsn] = address
            self.records_indexed += 1
        runs: list[tuple[LSN, LSN]] = []
        for lsn in fresh:
            if runs and lsn == runs[-1][1] + 1:
                runs[-1] = (runs[-1][0], lsn)
            else:
                runs.append((lsn, lsn))
        for lo, hi in runs:
            self.forest.append(lo, hi, tuple([address] * (hi - lo + 1)))

    def locate(self, lsn: LSN) -> PageAddress | None:
        """The sealed track holding the winning copy of ``lsn``."""
        found = self.overlay.get(lsn)
        if found is not None:
            return found
        try:
            return self.forest.search(lsn)
        except KeyError:
            return None


class ServerLogIndex:
    """All clients' indexes for one server, fed by stream seal events."""

    def __init__(self):
        self._clients: dict[str, ClientLogIndex] = {}
        self.tracks_indexed = 0

    def client(self, client_id: str) -> ClientLogIndex:
        index = self._clients.get(client_id)
        if index is None:
            index = ClientLogIndex(client_id)
            self._clients[client_id] = index
        return index

    def on_seal(self, address: PageAddress,
                entries: tuple[StreamEntry, ...]) -> None:
        """Stream callback: index every record in a sealed track.

        Staged CopyLog entries are indexed like writes — once
        installed, reads for their LSN should find the track that
        physically holds the bytes.  Install markers carry no record.
        """
        per_client: dict[str, list[LSN]] = {}
        for entry in entries:
            if entry.record is None:
                continue
            per_client.setdefault(entry.client_id, []).append(entry.record.lsn)
        for client_id, lsns in per_client.items():
            self.client(client_id).note_records(address, lsns)
        self.tracks_indexed += 1

    def locate(self, client_id: str, lsn: LSN) -> PageAddress | None:
        index = self._clients.get(client_id)
        if index is None:
            return None
        return index.locate(lsn)

    def rebuild(self, stream: DiskLogStream) -> None:
        """Reconstruct the index by scanning the sealed tracks.

        Used after a server crash: the index is volatile, the tracks
        are not, and seal order (page address order) replays the exact
        same note sequence as live operation did.
        """
        from ..storage.log_stream import Checkpoint

        self._clients.clear()
        self.tracks_indexed = 0
        for address, entries in stream.pages.scan():
            if isinstance(entries, Checkpoint):
                continue  # in-stream checkpoint pages carry no records
            self.on_seal(address, entries)

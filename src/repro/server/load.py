"""Load shedding and server-selection strategies (Sections 4.2, 5.4).

Servers "are free to ignore ForceLog and WriteLog messages if they
become too heavily loaded.  Clients will simply assume that the server
has failed and will take their logging elsewhere."  The shedding
trigger here is NVRAM back-pressure: when the non-volatile buffer
cannot take a message's records, the message is dropped.

Section 5.4 leaves load *assignment* open ("presumably, simple
decentralized strategies for assigning loads fairly can be used") and
suggests it is "very amenable to … simple experimentation" — the
strategies below are the ones the ablation benchmark compares.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..storage.nvram import NvramBuffer


class SheddingPolicy(Protocol):
    """Decides whether a server should ignore an incoming write."""

    def should_shed(self, incoming_bytes: int) -> bool: ...


class NvramBackpressure:
    """Shed when the NVRAM buffer cannot absorb the message."""

    def __init__(self, nvram: NvramBuffer, headroom_bytes: int = 0):
        self.nvram = nvram
        self.headroom_bytes = headroom_bytes

    def should_shed(self, incoming_bytes: int) -> bool:
        return self.nvram.free < incoming_bytes + self.headroom_bytes


class NeverShed:
    """Accept everything (used to isolate other bottlenecks)."""

    def should_shed(self, incoming_bytes: int) -> bool:
        return False


class AssignmentStrategy(Protocol):
    """Client-side choice of which N servers receive its records."""

    def choose(
        self, servers: Sequence[str], n: int, loads: dict[str, float]
    ) -> list[str]: ...


class StickyAssignment:
    """Stay with the current servers; deterministic fallback order.

    The paper's default behaviour: "clients should attempt to perform
    consecutive writes to the same servers" to keep interval lists
    short.
    """

    def __init__(self, preferred: Sequence[str] = ()):
        self.preferred = list(preferred)

    def choose(
        self, servers: Sequence[str], n: int, loads: dict[str, float]
    ) -> list[str]:
        ordered = [s for s in self.preferred if s in servers]
        ordered += [s for s in sorted(servers) if s not in ordered]
        return ordered[:n]


class RandomAssignment:
    """Pick N servers uniformly at random (no stickiness)."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def choose(
        self, servers: Sequence[str], n: int, loads: dict[str, float]
    ) -> list[str]:
        pool = list(servers)
        self.rng.shuffle(pool)
        return pool[:n]


class LeastLoadedAssignment:
    """Pick the N servers with the lowest observed load.

    ``loads`` maps server id to any monotone load signal the client has
    observed (e.g. recent force latency); unknown servers count as
    unloaded, which gives new servers a chance.
    """

    def choose(
        self, servers: Sequence[str], n: int, loads: dict[str, float]
    ) -> list[str]:
        return sorted(servers, key=lambda s: (loads.get(s, 0.0), s))[:n]
